#include "autopar/parallelizer.hpp"

#include <functional>

namespace tc3i::autopar {

namespace {

/// Flattens a loop body (recursively through nested loops) into statement
/// pointers, and collects nested loop variables and declared locals.
void collect(const Loop& loop, std::vector<const Statement*>& statements,
             std::set<std::string>& inner_vars,
             std::set<std::string>& locals, bool is_root) {
  if (!is_root && !loop.var.empty()) inner_vars.insert(loop.var);
  for (const auto& name : loop.local_scalars) locals.insert(name);
  for (const auto& name : loop.local_arrays) locals.insert(name);
  for (const auto& item : loop.order) {
    if (item.statement_index >= 0)
      statements.push_back(
          &loop.statements[static_cast<std::size_t>(item.statement_index)]);
    else
      collect(loop.nested[static_cast<std::size_t>(item.loop_index)],
              statements, inner_vars, locals, /*is_root=*/false);
  }
}

}  // namespace

LoopVerdict Parallelizer::analyze(const Loop& loop,
                                  const std::set<std::string>& invariants) const {
  LoopVerdict verdict;
  verdict.loop_name = loop.name;

  std::vector<const Statement*> statements;
  std::set<std::string> inner_vars;
  std::set<std::string> locals;
  collect(loop, statements, inner_vars, locals, /*is_root=*/true);

  if (loop.is_while)
    verdict.obstacles.push_back(
        "while loop with data-dependent trip count: iterations are ordered "
        "by construction (time-stepped simulation)");

  // Opaque structure: the paper's recurring theme for general-purpose C.
  bool reported_call = false;
  bool reported_pointer = false;
  for (const Statement* s : statements) {
    if (s->opaque_call && !reported_call) {
      reported_call = true;
      verdict.obstacles.push_back(
          "body calls separately compiled functions ('" + s->text +
          "'): interprocedural side effects unknown");
    }
    if (s->pointer_deref && !reported_pointer) {
      reported_pointer = true;
      verdict.obstacles.push_back(
          "body dereferences pointers ('" + s->text +
          "'): may alias any array");
    }
  }

  // Scalar dataflow.
  const auto scalar_verdicts = classify_scalars(statements, locals);
  for (const auto& sv : scalar_verdicts) {
    switch (sv.cls) {
      case ScalarClass::Invariant:
        break;
      case ScalarClass::Privatizable:
        verdict.transformations.push_back("privatize scalar '" + sv.name +
                                          "' (" + sv.reason + ")");
        break;
      case ScalarClass::Reduction:
        verdict.transformations.push_back("reduction on '" + sv.name + "' (" +
                                          sv.reason + ")");
        break;
      case ScalarClass::Carried:
        verdict.obstacles.push_back("scalar '" + sv.name + "': " + sv.reason);
        break;
    }
  }

  // Array dependences: every pair of accesses to a shared array with at
  // least one write.
  DepContext ctx;
  ctx.loop_var = loop.var;
  ctx.invariants = invariants;
  // Privatizable/invariant scalars and declared locals behave as
  // iteration-private symbols in subscripts.
  for (const auto& sv : scalar_verdicts)
    if (sv.cls == ScalarClass::Invariant) ctx.invariants.insert(sv.name);
  ctx.inner_loop_vars = inner_vars;

  std::set<std::string> reported_arrays;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    for (const ArrayAccess& a : statements[i]->arrays) {
      if (locals.contains(a.array)) continue;
      for (std::size_t j = i; j < statements.size(); ++j) {
        for (const ArrayAccess& b : statements[j]->arrays) {
          if (locals.contains(b.array)) continue;
          if (a.array != b.array) continue;
          if (a.kind != AccessKind::Write && b.kind != AccessKind::Write)
            continue;
          const DepTestOutcome outcome = test_pair(a, b, ctx);
          if (outcome.result == DepResult::Carried &&
              !reported_arrays.contains(a.array)) {
            reported_arrays.insert(a.array);
            verdict.obstacles.push_back(outcome.reason);
          }
        }
      }
    }
  }

  if (loop.pragma_parallel) {
    verdict.parallelizable = true;
    verdict.by_pragma_only = !verdict.obstacles.empty();
  } else {
    verdict.parallelizable = verdict.obstacles.empty();
  }
  return verdict;
}

std::vector<LoopVerdict> Parallelizer::analyze_nest(
    const Loop& loop, const std::set<std::string>& invariants) const {
  std::vector<LoopVerdict> verdicts;
  verdicts.push_back(analyze(loop, invariants));
  std::set<std::string> inner_invariants = invariants;
  if (!loop.var.empty()) inner_invariants.insert(loop.var);
  for (const auto& name : loop.local_scalars) inner_invariants.insert(name);
  for (const Loop& nested : loop.nested) {
    auto sub = analyze_nest(nested, inner_invariants);
    verdicts.insert(verdicts.end(), sub.begin(), sub.end());
  }
  return verdicts;
}

}  // namespace tc3i::autopar
