#include "autopar/report.hpp"

#include <sstream>

namespace tc3i::autopar {

std::string format_verdict(const LoopVerdict& v) {
  std::ostringstream os;
  os << v.loop_name << "\n";
  if (v.parallelizable && !v.by_pragma_only) {
    os << "  PARALLELIZABLE (proven by analysis)\n";
  } else if (v.parallelizable && v.by_pragma_only) {
    os << "  PARALLEL BY ASSERTION (#pragma multithreaded) — analysis alone "
          "could not prove it:\n";
  } else {
    os << "  NOT PARALLELIZED — obstacles:\n";
  }
  for (const auto& o : v.obstacles) os << "    - " << o << "\n";
  if (!v.transformations.empty()) {
    os << "  applicable transformations:\n";
    for (const auto& t : v.transformations) os << "    * " << t << "\n";
  }
  return os.str();
}

std::string format_verdicts(const std::vector<LoopVerdict>& verdicts) {
  std::ostringstream os;
  for (const auto& v : verdicts) os << format_verdict(v) << "\n";
  return os.str();
}

}  // namespace tc3i::autopar
