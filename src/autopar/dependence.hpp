// Array dependence testing for a candidate parallel loop.
//
// Classic subscript tests (ZIV, strong SIV, GCD) over affine subscripts;
// everything non-affine, loop-variant-scalar-subscripted, pointer-based or
// behind an opaque call is conservatively dependent — which is precisely
// the paper's point about general-purpose C programs.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "autopar/ir.hpp"

namespace tc3i::autopar {

/// Classification of a (write, read/write) access pair for the loop being
/// analyzed.
enum class DepResult {
  Independent,      ///< proven: no two iterations touch the same element
  LoopIndependent,  ///< same iteration only; safe to run iterations in parallel
  Carried,          ///< proven or assumed cross-iteration dependence
};

struct DepTestOutcome {
  DepResult result = DepResult::Carried;
  std::string reason;
};

/// Context for subscript analysis of one candidate loop.
struct DepContext {
  std::string loop_var;                 ///< the loop being parallelized
  std::set<std::string> invariants;     ///< names constant across iterations
  std::set<std::string> inner_loop_vars;  ///< induction vars of nested loops
};

/// Tests one pair of accesses to the same array.
[[nodiscard]] DepTestOutcome test_pair(const ArrayAccess& a,
                                       const ArrayAccess& b,
                                       const DepContext& ctx);

/// Greatest common divisor (exposed for the GCD-test unit tests).
[[nodiscard]] long gcd(long a, long b);

}  // namespace tc3i::autopar
