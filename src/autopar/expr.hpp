// Affine expressions over loop induction variables and symbolic names —
// the subscript language of the dependence analyzer.
#pragma once

#include <map>
#include <string>

namespace tc3i::autopar {

/// c0 + sum_i (coeff_i * var_i). Variables are named; whether a name is a
/// loop induction variable, a loop-invariant parameter, or a loop-variant
/// scalar is decided by the analysis context, not the expression.
class AffineExpr {
 public:
  AffineExpr() = default;

  static AffineExpr constant(long value);
  static AffineExpr var(const std::string& name, long coeff = 1);
  /// A subscript the compiler cannot analyze (pointer arithmetic,
  /// division, function-call result, ...). `why` is reported verbatim.
  static AffineExpr non_affine(std::string why);

  [[nodiscard]] bool is_affine() const { return affine_; }
  [[nodiscard]] const std::string& note() const { return note_; }
  [[nodiscard]] long constant_term() const { return constant_; }
  [[nodiscard]] long coeff_of(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, long>& coeffs() const {
    return coeffs_;
  }

  /// True when the expression references `name` with nonzero coefficient.
  [[nodiscard]] bool uses(const std::string& name) const;

  /// True when the only variables used are in `allowed`.
  template <typename Set>
  [[nodiscard]] bool only_uses(const Set& allowed) const {
    for (const auto& [name, coeff] : coeffs_)
      if (coeff != 0 && !allowed.contains(name)) return false;
    return true;
  }

  AffineExpr operator+(const AffineExpr& other) const;
  AffineExpr operator-(const AffineExpr& other) const;
  AffineExpr scaled(long factor) const;

  [[nodiscard]] std::string str() const;

 private:
  bool affine_ = true;
  long constant_ = 0;
  std::map<std::string, long> coeffs_;
  std::string note_;
};

}  // namespace tc3i::autopar
