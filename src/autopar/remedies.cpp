#include "autopar/remedies.hpp"

#include <sstream>

#include "autopar/report.hpp"

namespace tc3i::autopar {

namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

Remedy remedy_for(const std::string& obstacle) {
  Remedy r;
  r.obstacle = obstacle;
  if (contains(obstacle, "used as an array index")) {
    r.suggestion =
        "split the loop into chunks and privatize both the counter and the "
        "output array section per chunk (oversize each section), OR keep "
        "one shared counter updated with an atomic fetch-add if the target "
        "supports cheap word-level synchronization — output order then "
        "becomes nondeterministic";
    r.precedent = "Program 2 (chunking); the paper's fine-grained Threat "
                  "Analysis alternative (fetch-add)";
  } else if (contains(obstacle, "inner loop variables")) {
    r.suggestion =
        "iterations write overlapping index sets: either block the shared "
        "array and guard each block with a lock, compute into a private "
        "temp and combine under the locks, or parallelize the *inner* "
        "loops instead of this one";
    r.precedent = "Program 4 (blocking + locks); the paper's fine-grained "
                  "Terrain Masking (inner loops)";
  } else if (contains(obstacle, "separately compiled")) {
    r.suggestion =
        "the call's side effects are invisible to analysis: assert "
        "independence with `#pragma multithreaded` (after manual review), "
        "inline the callee, or annotate it as pure";
    r.precedent = "Programs 2 and 4 (pragma assertions)";
  } else if (contains(obstacle, "dereferences pointers")) {
    r.suggestion =
        "pointer accesses may alias the arrays: replace with direct "
        "subscripts where possible or assert no-alias via the pragma";
    r.precedent = "Programs 2 and 4 (pragma assertions)";
  } else if (contains(obstacle, "data-dependent trip count")) {
    r.suggestion =
        "the time-stepped inner loop is inherently ordered: leave it "
        "sequential and find parallelism in an enclosing loop over "
        "independent work items";
    r.precedent = "both benchmarks: parallelism came from the outer loops";
  } else if (contains(obstacle, "indirection")) {
    r.suggestion =
        "subscripts go through an index table the compiler cannot bound: "
        "if the table entries are known distinct (a permutation), assert "
        "independence with the pragma";
    r.precedent = "the fine-grained ring loop (cells of one ring are "
                  "distinct by construction)";
  } else if (contains(obstacle, "loop-variant scalar")) {
    r.suggestion =
        "the subscript's value depends on execution history: make the "
        "indexing scalar iteration-local (privatize it together with the "
        "array section it indexes) so each iteration writes a "
        "statically-known region";
    r.precedent = "Program 2 (per-chunk num_intervals[chunk] index)";
  } else if (contains(obstacle, "strong SIV: loop-carried")) {
    r.suggestion =
        "a genuine recurrence: no loop-level remedy; restructure the "
        "algorithm (e.g. process wavefronts/rings so elements within a "
        "front are independent)";
    r.precedent = "the masking kernel's ring schedule";
  } else if (contains(obstacle, "cross-iteration flow") ||
             contains(obstacle, "read-then-write")) {
    r.suggestion =
        "a scalar carries a value between iterations: if the recurrence "
        "is associative rewrite it as a reduction; otherwise restructure";
    r.precedent = "";
  } else {
    r.suggestion = "no mechanical remedy known; manual restructuring needed";
    r.precedent = "";
  }
  return r;
}

}  // namespace

std::vector<Remedy> suggest_remedies(const LoopVerdict& verdict) {
  std::vector<Remedy> remedies;
  remedies.reserve(verdict.obstacles.size());
  for (const auto& obstacle : verdict.obstacles)
    remedies.push_back(remedy_for(obstacle));
  return remedies;
}

std::string format_with_remedies(const LoopVerdict& verdict) {
  std::ostringstream os;
  os << format_verdict(verdict);
  const auto remedies = suggest_remedies(verdict);
  if (!remedies.empty()) {
    os << "  suggested remedies:\n";
    for (const auto& r : remedies) {
      os << "    -> " << r.suggestion << '\n';
      if (!r.precedent.empty()) os << "       (precedent: " << r.precedent << ")\n";
    }
  }
  return os.str();
}

}  // namespace tc3i::autopar
