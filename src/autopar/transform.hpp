// Mechanical chunking transformation: Program 1 -> Program 2, automated.
//
// The paper argues compilers cannot parallelize these programs because
// the fix "involves significant modification of the underlying
// algorithm". For the Threat Analysis pattern, though, the modification
// is *mechanical*: split the loop into chunks, privatize the shared
// counter as counter[chunk], and redirect the counter-indexed array into
// a per-chunk section. This module implements exactly that rewrite on the
// IR. What remains non-mechanical is what the paper said it was: proving
// the loop body's opaque calls safe — the transformed loop still needs
// the programmer's pragma.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "autopar/ir.hpp"

namespace tc3i::autopar {

struct ChunkingResult {
  Loop transformed;
  /// What was privatized / rewritten.
  std::vector<std::string> notes;
};

/// Attempts the chunking rewrite on `loop`. Succeeds when the loop's only
/// cross-iteration *data* obstacles are shared counters updated with "+"
/// and used as array indices (the num_intervals pattern). Returns nullopt
/// when there is nothing to fix or when other data dependences remain
/// (genuine recurrences cannot be chunked away).
[[nodiscard]] std::optional<ChunkingResult> apply_chunking(const Loop& loop);

}  // namespace tc3i::autopar
