#include "autopar/programs.hpp"

namespace tc3i::autopar {

namespace {

ArrayAccess read(const std::string& array, std::vector<AffineExpr> subs) {
  return ArrayAccess{array, std::move(subs), AccessKind::Read};
}
ArrayAccess write(const std::string& array, std::vector<AffineExpr> subs) {
  return ArrayAccess{array, std::move(subs), AccessKind::Write};
}
ScalarAccess sread(const std::string& name) {
  return ScalarAccess{name, ScalarAccess::Kind::Read, ""};
}
ScalarAccess swrite(const std::string& name) {
  return ScalarAccess{name, ScalarAccess::Kind::Write, ""};
}
ScalarAccess supdate(const std::string& name, const std::string& op) {
  return ScalarAccess{name, ScalarAccess::Kind::Update, op};
}

}  // namespace

Loop threat_program1() {
  Loop outer;
  outer.name = "Program 1: Threat Analysis, loop over threats";
  outer.var = "threat";
  outer.lower = AffineExpr::constant(0);
  outer.upper = AffineExpr::var("num_threats") - AffineExpr::constant(1);

  Loop weapons;
  weapons.name = "Program 1: inner loop over weapons";
  weapons.var = "weapon";
  weapons.lower = AffineExpr::constant(0);
  weapons.upper = AffineExpr::var("num_weapons") - AffineExpr::constant(1);

  {
    Statement& s = weapons.add_statement("t0 = initial detection time of threat");
    s.scalars = {swrite("t0")};
    s.arrays = {read("threats", {AffineExpr::var("threat")})};
    s.opaque_call = true;  // detection_time(&threats[threat])
    s.pointer_deref = true;
  }

  Loop scan;
  scan.name = "Program 1: time-stepped interception scan";
  scan.is_while = true;
  {
    Statement& s = scan.add_statement(
        "t1 = first time after t0 that weapon can intercept threat");
    s.scalars = {swrite("t1"), sread("t0")};
    s.opaque_call = true;  // time-stepped simulation routine
    s.pointer_deref = true;
  }
  {
    Statement& s = scan.add_statement(
        "t2 = last time after t1 that weapon can intercept threat");
    s.scalars = {swrite("t2"), sread("t1")};
    s.opaque_call = true;
  }
  {
    Statement& s = scan.add_statement(
        "intervals[num_intervals] = (threat, weapon, [t1 .. t2])");
    s.arrays = {write("intervals", {AffineExpr::var("num_intervals")})};
    s.scalars = {sread("num_intervals"), sread("t1"), sread("t2")};
  }
  {
    Statement& s = scan.add_statement("num_intervals = num_intervals + 1");
    s.scalars = {supdate("num_intervals", "+")};
  }
  {
    Statement& s = scan.add_statement("t0 = t2 + 1");
    s.scalars = {swrite("t0"), sread("t2")};
  }
  weapons.add_nested(std::move(scan));
  outer.add_nested(std::move(weapons));
  return outer;
}

Loop threat_program2(bool with_pragma) {
  Loop outer;
  outer.name = "Program 2: Threat Analysis, multithreaded loop over chunks";
  outer.var = "chunk";
  outer.lower = AffineExpr::constant(0);
  outer.upper = AffineExpr::var("num_chunks") - AffineExpr::constant(1);
  outer.pragma_parallel = with_pragma;
  outer.local_scalars = {"first_threat", "last_threat", "t0", "t1", "t2"};

  {
    Statement& s = outer.add_statement(
        "first_threat = (chunk*num_threats)/num_chunks");
    s.scalars = {swrite("first_threat")};
  }
  {
    Statement& s = outer.add_statement(
        "last_threat = ((chunk+1)*num_threats)/num_chunks - 1");
    s.scalars = {swrite("last_threat")};
  }
  {
    Statement& s = outer.add_statement("num_intervals[chunk] = 0");
    s.arrays = {write("num_intervals", {AffineExpr::var("chunk")})};
  }

  Loop threats;
  threats.name = "Program 2: loop over the chunk's threats";
  threats.var = "threat";
  // Non-affine bounds (integer division) — the compiler cannot relate
  // chunks to disjoint threat ranges.
  threats.lower = AffineExpr::non_affine("(chunk*num_threats)/num_chunks");
  threats.upper = AffineExpr::non_affine("((chunk+1)*num_threats)/num_chunks - 1");

  Loop weapons;
  weapons.name = "Program 2: inner loop over weapons";
  weapons.var = "weapon";
  weapons.lower = AffineExpr::constant(0);
  weapons.upper = AffineExpr::var("num_weapons") - AffineExpr::constant(1);

  Loop scan;
  scan.name = "Program 2: time-stepped interception scan";
  scan.is_while = true;
  {
    Statement& s = scan.add_statement(
        "t1, t2 = interception window via time-stepped simulation");
    s.scalars = {swrite("t1"), swrite("t2"), sread("t0")};
    s.opaque_call = true;
    s.pointer_deref = true;
  }
  {
    Statement& s = scan.add_statement(
        "intervals[chunk][num_intervals[chunk]] = (threat, weapon, [t1 .. t2])");
    s.arrays = {
        write("intervals",
              {AffineExpr::var("chunk"), AffineExpr::var("num_intervals[chunk]")}),
        read("num_intervals", {AffineExpr::var("chunk")})};
    s.scalars = {sread("t1"), sread("t2")};
  }
  {
    Statement& s = scan.add_statement(
        "num_intervals[chunk] = num_intervals[chunk] + 1");
    s.arrays = {write("num_intervals", {AffineExpr::var("chunk")}),
                read("num_intervals", {AffineExpr::var("chunk")})};
  }
  weapons.add_nested(std::move(scan));
  threats.add_nested(std::move(weapons));
  outer.add_nested(std::move(threats));
  return outer;
}

Loop terrain_program3() {
  Loop outer;
  outer.name = "Program 3: Terrain Masking, loop over threats";
  outer.var = "threat";
  outer.lower = AffineExpr::constant(0);
  outer.upper = AffineExpr::var("num_threats") - AffineExpr::constant(1);

  auto region_pass = [](const std::string& name, const std::string& text,
                        std::vector<ArrayAccess> accesses, bool opaque) {
    Loop pass_x;
    pass_x.name = name;
    pass_x.var = "x";
    pass_x.lower = AffineExpr::non_affine("region of influence of threat");
    pass_x.upper = AffineExpr::non_affine("region of influence of threat");
    Loop pass_y;
    pass_y.name = name + " (inner y loop)";
    pass_y.var = "y";
    pass_y.lower = AffineExpr::non_affine("region of influence of threat");
    pass_y.upper = AffineExpr::non_affine("region of influence of threat");
    Statement& s = pass_y.add_statement(text);
    s.arrays = std::move(accesses);
    s.opaque_call = opaque;
    pass_x.add_nested(std::move(pass_y));
    return pass_x;
  };

  const AffineExpr x = AffineExpr::var("x");
  const AffineExpr y = AffineExpr::var("y");
  outer.add_nested(region_pass(
      "Program 3: save pass", "temp[x][y] = masking[x][y]",
      {write("temp", {x, y}), read("masking", {x, y})}, false));
  outer.add_nested(region_pass("Program 3: reset pass",
                               "masking[x][y] = INFINITY",
                               {write("masking", {x, y})}, false));
  outer.add_nested(region_pass(
      "Program 3: kernel pass",
      "masking[x][y] = maximum safe altitude over x,y due to threat",
      {write("masking", {x, y}),
       read("masking", {AffineExpr::non_affine("neighbor toward threat"),
                        AffineExpr::non_affine("neighbor toward threat")})},
      true));
  outer.add_nested(region_pass(
      "Program 3: min-combine pass",
      "masking[x][y] = Min(masking[x][y], temp[x][y])",
      {write("masking", {x, y}), read("masking", {x, y}),
       read("temp", {x, y})},
      false));
  return outer;
}

Loop terrain_program4(bool with_pragma) {
  Loop outer;
  outer.name = "Program 4: Terrain Masking, multithreaded loop over threads";
  outer.var = "thread";
  outer.lower = AffineExpr::constant(0);
  outer.upper = AffineExpr::var("num_threads") - AffineExpr::constant(1);
  outer.pragma_parallel = with_pragma;
  outer.local_scalars = {"threat"};
  outer.local_arrays = {"temp"};

  Loop queue;
  queue.name = "Program 4: dynamic threat queue";
  queue.is_while = true;
  {
    Statement& s = queue.add_statement("threat = next unprocessed threat");
    s.scalars = {swrite("threat")};
    s.opaque_call = true;  // shared queue pop
  }
  {
    Statement& s = queue.add_statement(
        "temp[x][y] = maximum safe altitude due to threat (region passes)");
    s.arrays = {write("temp", {AffineExpr::var("x"), AffineExpr::var("y")})};
    s.opaque_call = true;
  }
  {
    Statement& s = queue.add_statement(
        "lock(locks[i][j]); masking = Min(masking, temp) over block; unlock");
    s.arrays = {
        write("masking", {AffineExpr::var("x"), AffineExpr::var("y")}),
        read("masking", {AffineExpr::var("x"), AffineExpr::var("y")}),
        read("temp", {AffineExpr::var("x"), AffineExpr::var("y")})};
    s.opaque_call = true;  // lock library calls
  }
  outer.add_nested(std::move(queue));
  return outer;
}

Loop terrain_ring_loop(bool with_pragma) {
  Loop ring;
  ring.name = "Fine-grained kernel: loop over one ring's cells";
  ring.var = "k";
  ring.lower = AffineExpr::constant(0);
  ring.upper = AffineExpr::var("ring_size") - AffineExpr::constant(1);
  ring.pragma_parallel = with_pragma;
  {
    Statement& s = ring.add_statement(
        "temp[cell_x[k]][cell_y[k]] = evaluate(parent slope, terrain)");
    // Indirection through the ring's cell table: non-affine subscripts.
    s.arrays = {
        write("temp", {AffineExpr::non_affine("cell_x[k] (indirection)"),
                       AffineExpr::non_affine("cell_y[k] (indirection)")}),
        read("temp", {AffineExpr::non_affine("parent_x[k] (indirection)"),
                      AffineExpr::non_affine("parent_y[k] (indirection)")})};
    s.opaque_call = true;  // evaluate_cell()
  }
  return ring;
}

Loop toy_vector_add() {
  Loop loop;
  loop.name = "toy: c[i] = a[i] + b[i]";
  loop.var = "i";
  loop.lower = AffineExpr::constant(0);
  loop.upper = AffineExpr::var("n") - AffineExpr::constant(1);
  Statement& s = loop.add_statement("c[i] = a[i] + b[i]");
  const AffineExpr i = AffineExpr::var("i");
  s.arrays = {write("c", {i}), read("a", {i}), read("b", {i})};
  return loop;
}

Loop toy_reduction() {
  Loop loop;
  loop.name = "toy: s += a[i]";
  loop.var = "i";
  loop.lower = AffineExpr::constant(0);
  loop.upper = AffineExpr::var("n") - AffineExpr::constant(1);
  Statement& s = loop.add_statement("s = s + a[i]");
  s.arrays = {read("a", {AffineExpr::var("i")})};
  s.scalars = {supdate("s", "+")};
  return loop;
}

Loop toy_stencil() {
  Loop loop;
  loop.name = "toy: a[i] = a[i-1] * k";
  loop.var = "i";
  loop.lower = AffineExpr::constant(1);
  loop.upper = AffineExpr::var("n") - AffineExpr::constant(1);
  Statement& s = loop.add_statement("a[i] = a[i-1] * k");
  s.arrays = {write("a", {AffineExpr::var("i")}),
              read("a", {AffineExpr::var("i") - AffineExpr::constant(1)})};
  s.scalars = {sread("k")};
  return loop;
}

}  // namespace tc3i::autopar
