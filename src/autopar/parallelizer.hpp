// The parallelization decision procedure: given a loop nest, decide for
// each loop whether it can be run multithreaded, and report *why not*
// otherwise — reproducing the verdicts (and stated reasons) of the
// manufacturer compilers in the paper.
#pragma once

#include <string>
#include <vector>

#include "autopar/dependence.hpp"
#include "autopar/ir.hpp"
#include "autopar/scalar_analysis.hpp"

namespace tc3i::autopar {

struct LoopVerdict {
  std::string loop_name;
  bool parallelizable = false;
  /// True when parallelizable only because of `#pragma multithreaded`
  /// (the compiler takes the programmer's word for it).
  bool by_pragma_only = false;
  /// Why the compiler cannot prove the loop parallel.
  std::vector<std::string> obstacles;
  /// Transformations the compiler would apply (privatization, reductions).
  std::vector<std::string> transformations;
};

class Parallelizer {
 public:
  /// Analyzes one loop as the parallelization candidate.
  /// `invariants`: names known loop-invariant at this nesting level.
  [[nodiscard]] LoopVerdict analyze(
      const Loop& loop, const std::set<std::string>& invariants = {}) const;

  /// Analyzes a whole nest: the loop itself and, recursively, each nested
  /// loop as its own candidate (inner-loop parallelism — the alternative
  /// the paper exploited on the MTA).
  [[nodiscard]] std::vector<LoopVerdict> analyze_nest(
      const Loop& loop, const std::set<std::string>& invariants = {}) const;
};

}  // namespace tc3i::autopar
