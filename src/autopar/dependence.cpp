#include "autopar/dependence.hpp"

#include <cmath>
#include <sstream>

namespace tc3i::autopar {

long gcd(long a, long b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const long t = a % b;
    a = b;
    b = t;
  }
  return a;
}

namespace {

/// Per-dimension verdicts, combined below.
enum class DimResult {
  ProvenIndependent,  ///< this dimension separates all iteration pairs
  SameIterationOnly,  ///< equal only when the loop iterations are equal
  Unproven,           ///< dimension gives no information
  CarriedDistance,    ///< proven cross-iteration reuse at some distance
};

struct DimOutcome {
  DimResult result;
  std::string reason;
};

DimOutcome test_dimension(const AffineExpr& sa, const AffineExpr& sb,
                          const DepContext& ctx) {
  if (!sa.is_affine())
    return {DimResult::Unproven, "subscript not analyzable: " + sa.note()};
  if (!sb.is_affine())
    return {DimResult::Unproven, "subscript not analyzable: " + sb.note()};

  // Any variable that is neither the candidate loop variable, a nested
  // loop variable, nor loop-invariant is a loop-variant scalar: the
  // compiler cannot bound what values it takes.
  for (const auto* expr : {&sa, &sb}) {
    for (const auto& [name, coeff] : expr->coeffs()) {
      if (coeff == 0) continue;
      if (name == ctx.loop_var) continue;
      if (ctx.invariants.contains(name)) continue;
      if (ctx.inner_loop_vars.contains(name)) continue;
      return {DimResult::Unproven,
              "subscript depends on loop-variant scalar '" + name + "'"};
    }
  }

  const long ca = sa.coeff_of(ctx.loop_var);
  const long cb = sb.coeff_of(ctx.loop_var);

  // Inner-loop variables make element sets per iteration; without range
  // information the dimension can still prove independence only through
  // the loop variable itself.
  bool uses_inner = false;
  for (const auto& v : ctx.inner_loop_vars)
    if (sa.uses(v) || sb.uses(v)) uses_inner = true;

  if (ca == 0 && cb == 0) {
    if (uses_inner)
      return {DimResult::Unproven,
              "dimension indexed only by inner loop variables; different "
              "iterations of the candidate loop may touch the same elements"};
    // ZIV: both loop-invariant in the candidate loop.
    const AffineExpr diff = sa - sb;
    if (diff.coeffs().empty() || [&] {
          for (const auto& [n, c] : diff.coeffs())
            if (c != 0) return false;
          return true;
        }()) {
      if (diff.constant_term() != 0)
        return {DimResult::ProvenIndependent, "ZIV: constant subscripts differ"};
      return {DimResult::Unproven, "ZIV: identical loop-invariant subscripts"};
    }
    return {DimResult::Unproven, "loop-invariant symbolic subscripts"};
  }

  if (ca == cb && !uses_inner) {
    // Strong SIV: c*i + k1 vs c*i + k2. Check the symbolic remainders
    // match; if so the dependence distance is (k2 - k1) / c.
    const AffineExpr diff = sa - sb;
    bool symbolic_remainder = false;
    for (const auto& [name, coeff] : diff.coeffs())
      if (name != ctx.loop_var && coeff != 0) symbolic_remainder = true;
    if (!symbolic_remainder) {
      const long delta = diff.constant_term();
      if (delta % ca != 0)
        return {DimResult::ProvenIndependent,
                "strong SIV: non-integer dependence distance"};
      const long distance = -delta / ca;
      if (distance == 0)
        return {DimResult::SameIterationOnly,
                "strong SIV: distance 0 (same iteration only)"};
      std::ostringstream os;
      os << "strong SIV: loop-carried at distance " << distance;
      return {DimResult::CarriedDistance, os.str()};
    }
    return {DimResult::Unproven, "SIV with symbolic additive terms"};
  }

  if (ca != 0 || cb != 0) {
    // GCD test on the linear Diophantine equation ca*i - cb*i' = k.
    const long g = gcd(ca, cb);
    const AffineExpr diff = sb - sa;
    bool symbolic = false;
    for (const auto& [name, coeff] : diff.coeffs())
      if (name != ctx.loop_var && coeff != 0) symbolic = true;
    if (!symbolic && g != 0 && diff.constant_term() % g != 0)
      return {DimResult::ProvenIndependent, "GCD test: no integer solution"};
    return {DimResult::Unproven, "MIV/weak SIV subscripts: test inconclusive"};
  }

  return {DimResult::Unproven, "subscript pair not classifiable"};
}

}  // namespace

DepTestOutcome test_pair(const ArrayAccess& a, const ArrayAccess& b,
                         const DepContext& ctx) {
  if (a.array != b.array) return {DepResult::Independent, "different arrays"};
  if (a.subscripts.size() != b.subscripts.size())
    return {DepResult::Carried,
            "array '" + a.array + "' accessed with differing dimensionality"};

  // A single dimension that provably separates distinct iterations
  // (distance 0 under strong SIV) already rules out cross-iteration
  // dependence, whatever the other dimensions do.
  bool any_same_iteration = false;
  std::string first_problem;
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    const DimOutcome dim = test_dimension(a.subscripts[d], b.subscripts[d], ctx);
    switch (dim.result) {
      case DimResult::ProvenIndependent:
        return {DepResult::Independent,
                "dimension " + std::to_string(d) + ": " + dim.reason};
      case DimResult::SameIterationOnly:
        any_same_iteration = true;
        break;
      case DimResult::Unproven:
      case DimResult::CarriedDistance:
        if (first_problem.empty())
          first_problem =
              "array '" + a.array + "' dimension " + std::to_string(d) + ": " +
              dim.reason;
        break;
    }
  }
  if (any_same_iteration)
    return {DepResult::LoopIndependent,
            "a dimension pins both accesses to the same iteration"};
  if (first_problem.empty())
    first_problem = "array '" + a.array + "': dependence could not be disproven";
  return {DepResult::Carried, first_problem};
}

}  // namespace tc3i::autopar
