#include "autopar/transform.hpp"

#include <set>

#include "autopar/parallelizer.hpp"
#include "autopar/scalar_analysis.hpp"

namespace tc3i::autopar {

namespace {

void collect_statements(const Loop& loop,
                        std::vector<const Statement*>& statements,
                        std::set<std::string>& locals) {
  for (const auto& name : loop.local_scalars) locals.insert(name);
  for (const auto& name : loop.local_arrays) locals.insert(name);
  for (const auto& item : loop.order) {
    if (item.statement_index >= 0)
      statements.push_back(
          &loop.statements[static_cast<std::size_t>(item.statement_index)]);
    else
      collect_statements(loop.nested[static_cast<std::size_t>(item.loop_index)],
                         statements, locals);
  }
}

/// Rewrites one statement in place: counter scalars become counter[chunk]
/// array accesses; array subscripts through a counter gain a leading
/// [chunk] dimension and index through the privatized counter.
void rewrite_statement(Statement& s, const std::set<std::string>& counters) {
  // Array subscripts first.
  for (ArrayAccess& access : s.arrays) {
    bool uses_counter = false;
    for (AffineExpr& sub : access.subscripts) {
      for (const auto& counter : counters) {
        if (sub.is_affine() && sub.uses(counter)) {
          uses_counter = true;
          sub = AffineExpr::var(counter + "[chunk]");
        }
      }
    }
    if (uses_counter)
      access.subscripts.insert(access.subscripts.begin(),
                               AffineExpr::var("chunk"));
  }
  // Scalar accesses to the counters become per-chunk array accesses.
  std::vector<ScalarAccess> kept;
  for (const ScalarAccess& access : s.scalars) {
    if (!counters.contains(access.name)) {
      kept.push_back(access);
      continue;
    }
    switch (access.kind) {
      case ScalarAccess::Kind::Read:
        s.arrays.push_back(ArrayAccess{
            access.name, {AffineExpr::var("chunk")}, AccessKind::Read});
        break;
      case ScalarAccess::Kind::Write:
        s.arrays.push_back(ArrayAccess{
            access.name, {AffineExpr::var("chunk")}, AccessKind::Write});
        break;
      case ScalarAccess::Kind::Update:
        s.arrays.push_back(ArrayAccess{
            access.name, {AffineExpr::var("chunk")}, AccessKind::Write});
        s.arrays.push_back(ArrayAccess{
            access.name, {AffineExpr::var("chunk")}, AccessKind::Read});
        break;
    }
  }
  s.scalars = std::move(kept);
}

void rewrite_loop(Loop& loop, const std::set<std::string>& counters) {
  for (Statement& s : loop.statements) rewrite_statement(s, counters);
  for (Loop& nested : loop.nested) rewrite_loop(nested, counters);
}

bool obstacle_mentions_any(const std::string& obstacle,
                           const std::set<std::string>& counters) {
  for (const auto& c : counters)
    if (obstacle.find("'" + c + "'") != std::string::npos) return true;
  return false;
}

bool is_opacity_obstacle(const std::string& obstacle) {
  return obstacle.find("separately compiled") != std::string::npos ||
         obstacle.find("dereferences pointers") != std::string::npos;
}

}  // namespace

std::optional<ChunkingResult> apply_chunking(const Loop& loop) {
  if (loop.var.empty() || loop.is_while) return std::nullopt;

  // Identify the fixable counters: scalars updated with "+" only and used
  // inside array subscripts.
  std::vector<const Statement*> statements;
  std::set<std::string> locals;
  collect_statements(loop, statements, locals);
  const auto verdicts = classify_scalars(statements, locals);
  const std::set<std::string> in_subscripts = subscript_scalars(statements);

  std::set<std::string> counters;
  for (const auto& v : verdicts) {
    if (v.cls != ScalarClass::Carried) continue;
    if (v.reason.find("array index") != std::string::npos &&
        in_subscripts.contains(v.name))
      counters.insert(v.name);
    else
      return std::nullopt;  // some other scalar recurrence: not chunkable
  }
  if (counters.empty()) return std::nullopt;  // nothing this rewrite fixes

  // Every non-opacity obstacle must trace back to one of the counters.
  const Parallelizer analyzer;
  for (const auto& obstacle : analyzer.analyze(loop).obstacles) {
    if (is_opacity_obstacle(obstacle)) continue;
    if (!obstacle_mentions_any(obstacle, counters)) return std::nullopt;
  }

  ChunkingResult result;
  Loop& outer = result.transformed;
  outer.name = loop.name + " (mechanically chunked)";
  outer.var = "chunk";
  outer.lower = AffineExpr::constant(0);
  outer.upper = AffineExpr::var("num_chunks") - AffineExpr::constant(1);
  outer.local_scalars = {"first_" + loop.var, "last_" + loop.var};

  {
    Statement& s = outer.add_statement("first_" + loop.var + " = (chunk*n)/num_chunks");
    s.scalars = {ScalarAccess{"first_" + loop.var, ScalarAccess::Kind::Write, ""}};
  }
  {
    Statement& s =
        outer.add_statement("last_" + loop.var + " = ((chunk+1)*n)/num_chunks - 1");
    s.scalars = {ScalarAccess{"last_" + loop.var, ScalarAccess::Kind::Write, ""}};
  }
  for (const auto& counter : counters) {
    Statement& s = outer.add_statement(counter + "[chunk] = 0");
    s.arrays = {ArrayAccess{counter, {AffineExpr::var("chunk")},
                            AccessKind::Write}};
    result.notes.push_back("privatized counter '" + counter + "' as " +
                           counter + "[chunk]");
  }

  Loop inner = loop;  // deep copy
  inner.name = loop.name + " (chunk body)";
  inner.lower = AffineExpr::non_affine("(chunk*n)/num_chunks");
  inner.upper = AffineExpr::non_affine("((chunk+1)*n)/num_chunks - 1");
  rewrite_loop(inner, counters);
  outer.add_nested(std::move(inner));

  result.notes.push_back(
      "arrays indexed through the counter(s) now write per-chunk sections "
      "(each must be oversized — counts are unknown in advance)");
  return result;
}

}  // namespace tc3i::autopar
