#include "autopar/expr.hpp"

#include <sstream>

namespace tc3i::autopar {

AffineExpr AffineExpr::constant(long value) {
  AffineExpr e;
  e.constant_ = value;
  return e;
}

AffineExpr AffineExpr::var(const std::string& name, long coeff) {
  AffineExpr e;
  e.coeffs_[name] = coeff;
  return e;
}

AffineExpr AffineExpr::non_affine(std::string why) {
  AffineExpr e;
  e.affine_ = false;
  e.note_ = std::move(why);
  return e;
}

long AffineExpr::coeff_of(const std::string& name) const {
  const auto it = coeffs_.find(name);
  return it == coeffs_.end() ? 0 : it->second;
}

bool AffineExpr::uses(const std::string& name) const {
  return coeff_of(name) != 0;
}

AffineExpr AffineExpr::operator+(const AffineExpr& other) const {
  if (!affine_ || !other.affine_)
    return non_affine(affine_ ? other.note_ : note_);
  AffineExpr e = *this;
  e.constant_ += other.constant_;
  for (const auto& [name, coeff] : other.coeffs_) e.coeffs_[name] += coeff;
  return e;
}

AffineExpr AffineExpr::operator-(const AffineExpr& other) const {
  return *this + other.scaled(-1);
}

AffineExpr AffineExpr::scaled(long factor) const {
  if (!affine_) return *this;
  AffineExpr e = *this;
  e.constant_ *= factor;
  for (auto& [name, coeff] : e.coeffs_) coeff *= factor;
  return e;
}

std::string AffineExpr::str() const {
  if (!affine_) return "<non-affine: " + note_ + ">";
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : coeffs_) {
    if (coeff == 0) continue;
    if (!first) os << (coeff > 0 ? " + " : " - ");
    else if (coeff < 0) os << "-";
    const long mag = coeff < 0 ? -coeff : coeff;
    if (mag != 1) os << mag << "*";
    os << name;
    first = false;
  }
  if (constant_ != 0 || first) {
    if (!first) os << (constant_ >= 0 ? " + " : " - ");
    os << (constant_ < 0 && first ? constant_
                                  : (constant_ < 0 ? -constant_ : constant_));
  }
  return os.str();
}

}  // namespace tc3i::autopar
