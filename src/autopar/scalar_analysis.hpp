// Scalar dataflow classification for a candidate parallel loop: which
// scalars are loop-invariant, privatizable, reductions — and which carry
// genuine cross-iteration dependences (the shared num_intervals counter of
// Program 1 being the canonical example: updated like a reduction but
// *used as an array index*, which no reduction transformation can fix).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "autopar/ir.hpp"

namespace tc3i::autopar {

enum class ScalarClass {
  Invariant,     ///< only read: safe to share
  Privatizable,  ///< written before use each iteration: give each thread a copy
  Reduction,     ///< associative update only: parallelize with a combiner
  Carried,       ///< genuine cross-iteration flow
};

struct ScalarVerdict {
  std::string name;
  ScalarClass cls = ScalarClass::Carried;
  std::string reason;
};

/// Classifies every non-local scalar referenced in the loop body
/// (recursively, including nested loops). `subscript_users` must contain
/// the names appearing inside array subscripts (computed by the caller
/// from the same statement set).
[[nodiscard]] std::vector<ScalarVerdict> classify_scalars(
    const std::vector<const Statement*>& statements,
    const std::set<std::string>& local_names);

/// Collects scalar names used inside any array subscript of `statements`.
[[nodiscard]] std::set<std::string> subscript_scalars(
    const std::vector<const Statement*>& statements);

/// True for operators the compiler may reassociate.
[[nodiscard]] bool is_associative(const std::string& op);

}  // namespace tc3i::autopar
