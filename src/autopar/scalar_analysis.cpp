#include "autopar/scalar_analysis.hpp"

#include <map>

namespace tc3i::autopar {

bool is_associative(const std::string& op) {
  return op == "+" || op == "*" || op == "min" || op == "max" || op == "|" ||
         op == "&" || op == "^";
}

std::set<std::string> subscript_scalars(
    const std::vector<const Statement*>& statements) {
  std::set<std::string> used;
  for (const Statement* s : statements)
    for (const ArrayAccess& a : s->arrays)
      for (const AffineExpr& sub : a.subscripts)
        for (const auto& [name, coeff] : sub.coeffs())
          if (coeff != 0) used.insert(name);
  return used;
}

std::vector<ScalarVerdict> classify_scalars(
    const std::vector<const Statement*>& statements,
    const std::set<std::string>& local_names) {
  // Gather, in program order, the accesses to each non-local scalar.
  struct Info {
    bool first_access_is_write = false;
    bool seen = false;
    bool any_plain_write = false;
    bool any_read = false;
    bool any_update = false;
    std::string update_op;
    bool mixed_update_ops = false;
  };
  std::map<std::string, Info> infos;
  for (const Statement* s : statements) {
    for (const ScalarAccess& a : s->scalars) {
      if (local_names.contains(a.name)) continue;
      Info& info = infos[a.name];
      if (!info.seen) {
        info.seen = true;
        info.first_access_is_write = (a.kind == ScalarAccess::Kind::Write);
      }
      switch (a.kind) {
        case ScalarAccess::Kind::Read:
          info.any_read = true;
          break;
        case ScalarAccess::Kind::Write:
          info.any_plain_write = true;
          break;
        case ScalarAccess::Kind::Update:
          info.any_update = true;
          if (info.update_op.empty())
            info.update_op = a.op;
          else if (info.update_op != a.op)
            info.mixed_update_ops = true;
          break;
      }
    }
  }

  const std::set<std::string> in_subscripts = subscript_scalars(statements);

  std::vector<ScalarVerdict> verdicts;
  for (const auto& [name, info] : infos) {
    ScalarVerdict v;
    v.name = name;
    if (!info.any_plain_write && !info.any_update) {
      v.cls = ScalarClass::Invariant;
      v.reason = "only read inside the loop";
    } else if (info.any_update && !info.any_plain_write) {
      if (in_subscripts.contains(name)) {
        v.cls = ScalarClass::Carried;
        v.reason =
            "updated every iteration *and used as an array index*: the "
            "element an iteration writes depends on all prior iterations";
      } else if (info.mixed_update_ops) {
        v.cls = ScalarClass::Carried;
        v.reason = "updated with mixed operators; not a recognizable reduction";
      } else if (is_associative(info.update_op) && !info.any_read) {
        v.cls = ScalarClass::Reduction;
        v.reason = "associative '" + info.update_op + "' reduction";
      } else {
        v.cls = ScalarClass::Carried;
        v.reason = info.any_read
                       ? "updated and separately read: cross-iteration flow"
                       : "update operator '" + info.update_op +
                             "' is not associative";
      }
    } else if (info.first_access_is_write && !info.any_update) {
      v.cls = ScalarClass::Privatizable;
      v.reason = "written before any use in each iteration";
    } else {
      v.cls = ScalarClass::Carried;
      v.reason = "read-then-write pattern carries a value between iterations";
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

}  // namespace tc3i::autopar
