// Full/empty-bit memory — the Tera MTA's signature synchronization feature.
//
// Every word of MTA memory carries a full/empty bit. A synchronized load
// waits until the word is FULL, reads it, and marks it EMPTY; a synchronized
// store waits until the word is EMPTY, writes it, and marks it FULL. This
// gives producer/consumer hand-off, mutual exclusion, and atomic update on
// any individual word with no separate lock objects — the property the paper
// highlights as enabling "synchronization on every element of a large data
// structure".
//
// This class models the state machine and the waiter queues; the machine
// simulator decides *when* operations are attempted and charges latency.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/counters.hpp"

namespace tc3i::mta {

using Address = std::uint64_t;
using Word = std::int64_t;
using StreamId = int;

/// Result of attempting a synchronized operation.
struct SyncAttempt {
  bool succeeded = false;
  Word value = 0;  ///< loaded value (sync load only)
};

class SyncMemory {
 private:
  // Deliberately no default member initializers: a trivially-default-
  // constructible Cell lets the 16 MiB `words_` fill lower to one memset
  // (measurably faster than the per-member store loop NSDMIs force), and
  // every construction site value-initializes (`Cell{}`, vector resize),
  // which zeroes all members anyway.
  struct Cell {
    Word value;
    std::uint32_t epoch;  ///< generation stamp; stale cells read as fresh
    bool full;
  };

 public:
  /// Recyclable backing storage. A finished memory can release its word
  /// array into an Arena and a later SyncMemory of the same size can adopt
  /// it in O(1): instead of zeroing the array, the new memory bumps the
  /// generation counter, making every cell whose `epoch` lags read as
  /// `{value 0, EMPTY}` until first touched. This is what makes batched
  /// sweeps cheap — the dominant per-run cost of a fresh machine is
  /// allocating and faulting in the (default 16 MiB) word array.
  class Arena {
   public:
    Arena() = default;
    [[nodiscard]] std::size_t size() const { return cells.size(); }

   private:
    friend class SyncMemory;
    std::vector<Cell> cells;
    std::uint32_t epoch = 0;
  };

  /// Creates a memory of `size` words, all EMPTY with value 0.
  explicit SyncMemory(std::size_t size);

  /// As above, but when `arena` holds a released array of exactly `size`
  /// cells it is adopted (O(1) logical reset via the epoch stamp) instead
  /// of allocating and zeroing a fresh one.
  SyncMemory(std::size_t size, Arena&& arena);

  /// Releases the word array for reuse by a later same-sized SyncMemory.
  /// The memory must not be used afterwards.
  [[nodiscard]] Arena release_arena() &&;

  [[nodiscard]] std::size_t size() const { return words_.size(); }

  // --- unsynchronized access (ignores full/empty bits) -------------------
  [[nodiscard]] Word load(Address addr) const;
  void store(Address addr, Word value);

  /// Writes a value and marks the word FULL without synchronization
  /// (used for initialization, like Tera's unconditional $ writes).
  void store_full(Address addr, Word value);

  /// Marks a word EMPTY without reading (initialization).
  void reset_empty(Address addr);

  [[nodiscard]] bool is_full(Address addr) const;

  // --- synchronized access ------------------------------------------------
  /// Attempts a synchronized load for `stream`. On failure the stream is
  /// queued on the word and will be handed the value by a later store.
  SyncAttempt try_sync_load(Address addr, StreamId stream);

  /// Attempts a synchronized store. On failure the stream is queued.
  SyncAttempt try_sync_store(Address addr, Word value, StreamId stream);

  /// A stream that was queued and has now been handed its operation's
  /// completion. The machine calls drain_handoffs() after every successful
  /// sync op to discover which queued streams were satisfied in cascade.
  struct Handoff {
    StreamId stream;
    Word value;  ///< value delivered to a queued sync load (0 for stores)
    bool was_load;
    Address addr;  ///< the word the queued operation completed on
  };

  /// Returns and clears the streams satisfied by cascaded hand-offs since
  /// the last call. (A sync store completing can satisfy a queued load,
  /// whose consumption can satisfy a queued store, and so on.)
  std::vector<Handoff> drain_handoffs();

  /// Number of streams currently blocked on any word.
  [[nodiscard]] std::size_t blocked_streams() const { return blocked_count_; }

  /// Counts of operations performed (for utilization reporting).
  [[nodiscard]] std::uint64_t sync_ops() const { return sync_ops_; }

  /// Publishes tallies accumulated since the last flush into the
  /// "mta.syncmem." registry counters. The hot paths only bump plain
  /// members; the machine calls this once at the end of a run so the
  /// always-on counters cost nothing per operation.
  void flush_counters();

 private:
  void cascade(Address addr);

  /// Mutable access normalizes a stale (previous-generation) cell to
  /// `{0, EMPTY}` before handing it out, so all writers see fresh state.
  Cell& cell(Address addr);

  std::vector<Cell> words_;
  // Current generation. Freshly allocated cells are zero-initialized with
  // epoch 0 matching `epoch_ = 0`, so the scalar (non-recycled) path never
  // takes the normalization branch.
  std::uint32_t epoch_ = 0;
  // Waiter queues are sparse: only contended addresses ever allocate one.
  std::unordered_map<Address, std::deque<StreamId>> load_waiters_;
  std::unordered_map<Address, std::deque<std::pair<StreamId, Word>>>
      store_waiters_;
  std::vector<Handoff> pending_handoffs_;
  std::size_t blocked_count_ = 0;
  std::uint64_t sync_ops_ = 0;
  std::uint64_t failed_attempts_ = 0;
  std::uint64_t handoffs_total_ = 0;
  // High-water marks of what flush_counters() already published.
  std::uint64_t flushed_ops_ = 0;
  std::uint64_t flushed_failed_ = 0;
  std::uint64_t flushed_handoffs_ = 0;
  // Always-on counters ("mta.syncmem." in obs::default_registry()),
  // updated only by flush_counters() to keep the per-op paths atomic-free.
  obs::Counter* c_ops_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_handoffs_ = nullptr;
};

}  // namespace tc3i::mta
