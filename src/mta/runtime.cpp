#include "mta/runtime.hpp"

#include <memory>

#include "core/contracts.hpp"

namespace tc3i::mta {

std::vector<VectorProgram*> build_parallel_loop(
    ProgramPool& pool, Machine& machine, std::size_t num_items,
    std::size_t num_chunks, const LoopBodyEmitter& emit_body,
    std::uint64_t prologue_instructions) {
  TC3I_EXPECTS(num_chunks > 0);
  std::vector<VectorProgram*> chunks;
  chunks.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    VectorProgram* p = pool.make_vector();
    const std::size_t first = c * num_items / num_chunks;
    const std::size_t last = (c + 1) * num_items / num_chunks;
    p->compute(prologue_instructions);
    for (std::size_t item = first; item < last; ++item) emit_body(*p, item);
    machine.add_stream(p);
    chunks.push_back(p);
  }
  return chunks;
}

VectorProgram* emit_future(
    ProgramPool& pool, VectorProgram& parent, Address result_cell,
    const std::function<void(VectorProgram&)>& emit_body) {
  VectorProgram* child = pool.make_vector();
  emit_body(*child);
  child->sync_store(result_cell);
  parent.spawn(child, /*software=*/true);
  return child;
}

void await_future(VectorProgram& consumer, Address result_cell) {
  consumer.sync_load(result_cell);
}

void append_atomic_fetch_add(VectorProgram& program, Address counter_cell) {
  program.sync_load(counter_cell);   // acquire: cell goes EMPTY
  program.compute(2);                // add + bookkeeping
  program.sync_store(counter_cell);  // release: cell goes FULL
}

void init_counter_cells(Machine& machine, Address base, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    machine.memory().store_full(base + i, 0);
}

void await_all(VectorProgram& master, Address done_base, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) master.sync_load(done_base + i);
}

void signal_done(VectorProgram& worker, Address done_base, std::size_t index) {
  worker.sync_store(done_base + index);
}

Address emit_sum_reduction(ProgramPool& pool, Machine& machine,
                           const std::vector<Word>& values, Address cell_base,
                           std::size_t fanout) {
  TC3I_EXPECTS(fanout >= 2);
  TC3I_EXPECTS(!values.empty());
  Address next_cell = cell_base;

  // Leaves: one producer stream per value.
  std::vector<Address> level;
  level.reserve(values.size());
  for (const Word value : values) {
    VectorProgram* leaf = pool.make_vector();
    leaf->compute(4);  // "compute" the value
    leaf->sync_store(next_cell, value);
    machine.add_stream(leaf);
    level.push_back(next_cell++);
  }

  // Internal nodes: consume children's cells, publish the partial sum.
  while (level.size() > 1) {
    std::vector<Address> next_level;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      const std::size_t end = std::min(i + fanout, level.size());
      const Address out = next_cell++;
      struct NodeState {
        std::vector<Address> children;
        std::size_t next_child = 0;
        Word sum = 0;
        Address out = 0;
        bool stored = false;
      };
      auto state = std::make_shared<NodeState>();
      state->children.assign(level.begin() + static_cast<std::ptrdiff_t>(i),
                             level.begin() + static_cast<std::ptrdiff_t>(end));
      state->out = out;
      CallbackProgram* node = pool.make_callback(
          [state](Instr& instr) {
            instr = Instr{};
            if (state->next_child < state->children.size()) {
              instr.op = Instr::Op::SyncLoad;
              instr.addr = state->children[state->next_child++];
              return true;
            }
            if (!state->stored) {
              state->stored = true;
              instr.op = Instr::Op::SyncStore;
              instr.addr = state->out;
              instr.value = state->sum;
              return true;
            }
            return false;
          },
          [state](Word v) { state->sum += v; });
      machine.add_stream(node);
      next_level.push_back(out);
    }
    level = std::move(next_level);
  }
  return level.front();
}

Address emit_tree_fork_join(ProgramPool& pool, VectorProgram& parent,
                            const std::vector<VectorProgram*>& workers,
                            Address cell_base, std::size_t fanout,
                            bool software) {
  TC3I_EXPECTS(fanout >= 2);
  TC3I_EXPECTS(!workers.empty());
  Address next_cell = cell_base;

  // Leaf level: every worker signals its own cell.
  struct Node {
    StreamProgram* program;
    Address done_cell;
  };
  std::vector<Node> level;
  level.reserve(workers.size());
  for (VectorProgram* worker : workers) {
    worker->sync_store(next_cell);
    level.push_back(Node{worker, next_cell});
    ++next_cell;
  }

  // Internal levels: spawn children, await their cells, signal own cell.
  while (level.size() > fanout) {
    std::vector<Node> next;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      VectorProgram* node = pool.make_vector();
      const std::size_t end = std::min(i + fanout, level.size());
      for (std::size_t j = i; j < end; ++j)
        node->spawn(level[j].program, software);
      for (std::size_t j = i; j < end; ++j)
        node->sync_load(level[j].done_cell);
      node->sync_store(next_cell);
      next.push_back(Node{node, next_cell});
      ++next_cell;
    }
    level = std::move(next);
  }

  for (const Node& root : level) parent.spawn(root.program, software);
  for (const Node& root : level) parent.sync_load(root.done_cell);
  return next_cell;
}

void emit_spawn_tree(ProgramPool& pool, VectorProgram& parent,
                     std::vector<StreamProgram*> workers, std::size_t fanout,
                     bool software) {
  TC3I_EXPECTS(fanout >= 2);
  // Repeatedly fold the worker list: groups of `fanout` get an
  // intermediate spawner stream, until at most `fanout` roots remain,
  // which the parent spawns directly.
  std::vector<StreamProgram*> level = std::move(workers);
  while (level.size() > fanout) {
    std::vector<StreamProgram*> next;
    for (std::size_t i = 0; i < level.size(); i += fanout) {
      VectorProgram* node = pool.make_vector();
      for (std::size_t j = i; j < std::min(i + fanout, level.size()); ++j)
        node->spawn(level[j], software);
      next.push_back(node);
    }
    level = std::move(next);
  }
  for (StreamProgram* root : level) parent.spawn(root, software);
}

}  // namespace tc3i::mta
