// Stream-level simulator of the Tera MTA.
//
// Mechanisms modeled (the ones the paper's MTA results hinge on):
//   - each processor issues at most one instruction per cycle, chosen from
//     its ready streams (FIFO arbitration);
//   - a stream that issues cannot issue again for `issue_spacing_cycles`
//     (21 on the MTA-1: the paper's "one instruction every 21 cycles" for a
//     lone stream, i.e. ~5% utilization single-threaded);
//   - there is no cache: every memory operation takes
//     `memory_latency_cycles` and passes through a shared network modeled
//     as a serial queue with service rate `network_ops_per_cycle`
//     (the under-development network the paper blames for the 1.4-1.8x
//     two-processor speedups);
//   - full/empty bits provide one-cycle-issue synchronization; blocked
//     streams wait in memory, consuming no issue slots;
//   - hardware thread creation costs ~2 cycles; software (library) thread
//     creation costs 50-100 cycles;
//   - 128 hardware stream slots per processor; additional runtime-created
//     streams wait (virtualized, as the Tera runtime does) until a slot
//     frees.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "mta/processor.hpp"
#include "mta/stream_program.hpp"
#include "mta/sync_memory.hpp"
#include "obs/counters.hpp"
#include "obs/critpath.hpp"
#include "obs/run_record.hpp"
#include "obs/timeline.hpp"
#include "sim/timer_wheel.hpp"

namespace tc3i::obs {
class TraceSink;
}

namespace tc3i::mta {

class PartitionedMachine;

struct MtaConfig {
  std::string name = "Tera MTA";
  int num_processors = 1;
  double clock_hz = 255e6;
  int streams_per_processor = 128;
  int issue_spacing_cycles = 21;
  int memory_latency_cycles = 70;
  /// Aggregate memory-network service rate (operations per cycle, shared by
  /// all processors).
  double network_ops_per_cycle = 0.45;
  int hw_spawn_cycles = 2;
  int sw_spawn_cycles = 60;
  /// Explicit-dependence lookahead: how many memory operations a stream
  /// may leave outstanding while continuing to issue. The real MTA
  /// encoded a lookahead of up to 7 in each instruction; 0 models fully
  /// dependent code (each memory op stalls its stream), which is the
  /// conservative default all headline results use. See
  /// bench/ablate_mta_lookahead.
  int lookahead = 0;
  std::size_t memory_words = 1u << 20;
  /// Interleaved memory banks (the MTA-1 had 64-way interleaving). 0
  /// models ideal interleaving (every op hits a distinct bank; the only
  /// memory constraint is the network) — the headline-results default.
  /// When > 0, an op to bank b (selected by address, see hash_addresses)
  /// must wait for the bank's previous op to retire plus
  /// `bank_busy_cycles`.
  int memory_banks = 0;
  int bank_busy_cycles = 8;
  /// The real machine hashed addresses across banks so strided code would
  /// not pathologically conflict; disable to see why (ablation).
  bool hash_addresses = true;
  /// When nonzero, the run records issue-slot utilization per bucket of
  /// this many cycles (MtaRunResult::utilization_timeline) — used to
  /// visualize latency masking and barrier valleys.
  std::uint64_t timeline_bucket_cycles = 0;
  /// Runs the pre-timing-wheel reference simulation loop (binary-heap wake
  /// queue, strictly one cycle at a time, no compute-run fast-forwarding).
  /// Slower but kept as the golden reference: the fast path must produce
  /// bit-identical cycles/instructions/memory_ops (see
  /// tests/mta_golden_test). Also enabled by the TC3I_SLOW_SIM environment
  /// variable (any value except "0").
  bool slow_reference = false;

  [[nodiscard]] std::string validate() const;
};

struct MtaRunResult {
  std::uint64_t cycles = 0;
  Seconds seconds = 0.0;
  std::uint64_t instructions_issued = 0;
  std::uint64_t memory_ops = 0;
  std::uint64_t spawns = 0;
  std::uint64_t streams_completed = 0;
  std::uint64_t peak_live_streams = 0;
  /// Issue slots used / issue slots available over the run.
  double processor_utilization = 0.0;
  /// Fraction of the shared network's service capacity consumed.
  double network_utilization = 0.0;
  /// Per-bucket issue-slot utilization (empty unless
  /// MtaConfig::timeline_bucket_cycles is set).
  std::vector<double> utilization_timeline;
  /// Exhaustive, exclusive issue-slot account summed over processors:
  /// slots.total() == cycles x num_processors, always (both simulation
  /// paths produce bit-identical accounts; see docs/OBSERVABILITY.md).
  obs::IssueSlotAccount slots;
  /// The same account split per processor (each totals `cycles`).
  std::vector<obs::IssueSlotAccount> processor_slots;
};

class Machine {
 public:
  explicit Machine(MtaConfig config);

  /// Arena-recycling constructor (the batched sweep engine's fast path):
  /// when `arena` holds a released word array of exactly
  /// `config.memory_words` cells, it is adopted instead of allocating and
  /// zeroing a fresh one. Simulation behavior is bit-identical either way.
  Machine(MtaConfig config, SyncMemory::Arena&& arena);

  [[nodiscard]] const MtaConfig& config() const { return config_; }
  [[nodiscard]] SyncMemory& memory() { return memory_; }
  [[nodiscard]] const SyncMemory& memory() const { return memory_; }

  /// Registers a stream to start at cycle 0 (assigned to the least-loaded
  /// processor). Call before run().
  void add_stream(StreamProgram* program);

  /// Runs until all streams have quit. Aborts (deadlock) if streams remain
  /// but none can ever become ready. `max_cycles` is a runaway guard.
  /// Exactly begin_run(max_cycles) + the full simulation loop +
  /// finish_run(); the windowed API below exposes the same loop in
  /// resumable slices for the batched lockstep engine.
  MtaRunResult run(std::uint64_t max_cycles = (1ull << 62));

  // --- Windowed execution (mta::BatchedMachine's interface) --------------
  // A run may be split into begin_run(), any number of advance_until()
  // slices, and finish_run(). Every slice executes the same fast-path loop
  // body run() executes, so counters, slot accounts, and RunRecords are
  // bit-identical to a monolithic run() at any slicing. The slow reference
  // path does not support slicing (advance_until contract-checks !slow_);
  // batched callers must route slow-reference configs through run().

  /// No-limit sentinel for advance_until (the runaway guard `max_cycles`
  /// still applies).
  static constexpr std::uint64_t kNoLimit = ~0ull;

  /// Starts a run (streams must already be added). Call exactly once.
  void begin_run(std::uint64_t max_cycles = (1ull << 62));

  /// Advances the simulation until all streams have quit or the clock
  /// reaches `limit`, whichever is first. Returns true when the run is
  /// complete and finish_run() may be called. Fast path only.
  bool advance_until(std::uint64_t limit);

  /// Finalizes a completed run: slot-account invariants, counter
  /// publication, RunRecord emission. Call exactly once, after
  /// advance_until returned true.
  MtaRunResult finish_run();

  /// Current simulation cycle (valid between begin_run and finish_run).
  [[nodiscard]] std::uint64_t now() const { return now_; }

  /// True when this machine runs the slow reference loop (config flag or
  /// TC3I_SLOW_SIM), which the windowed API does not support.
  [[nodiscard]] bool uses_slow_reference() const { return slow_; }

  /// Releases the sync-memory backing store for reuse by a later machine
  /// of the same memory_words (call only after the run finished).
  [[nodiscard]] SyncMemory::Arena release_memory_arena() && {
    return std::move(memory_).release_arena();
  }

 private:
  /// The intra-run partitioned scheduler drives the machine through the
  /// same private mutation points the scalar loop uses (issue, account_idle,
  /// activate, the wake queue) so the two paths stay bit-identical by
  /// construction. See partitioned_machine.hpp.
  friend class PartitionedMachine;

  /// Why a parked stream is not ready. Mirrors the stall categories of
  /// obs::IssueSlotAccount; kept per stream (wait_reason) and as a per-
  /// processor census (ProcAcct::waiting) so every idle issue slot can be
  /// attributed to exactly one category.
  enum class StallReason : std::uint8_t {
    kSpacing = 0,  ///< inside the 21-cycle issue spacing / lookahead window
    kSpawn = 1,    ///< paying stream-creation cost
    kMemory = 2,   ///< waiting on the memory network past the spacing window
    kSync = 3,     ///< blocked on a full/empty bit (incl. post-hand-off trip)
  };
  static constexpr std::size_t kNumStallReasons = 4;

  struct Stream {
    StreamProgram* program = nullptr;
    VectorProgram* vec = nullptr;  ///< program->as_vector(), fetch fast path
    int proc = -1;
    Instr cur;
    bool has_cur = false;
    bool dead = false;
    StallReason wait_reason = StallReason::kSpacing;  ///< valid while parked
    std::uint64_t issued = 0;     ///< instructions this stream issued
    std::uint64_t activated = 0;  ///< cycle activate() ran
    /// Completion cycles of outstanding memory ops (lookahead > 0 only;
    /// monotonically increasing, bounded by lookahead + 1).
    std::deque<std::uint64_t> outstanding;
  };

  /// Per-processor issue-slot account plus the census of parked streams by
  /// stall reason that idle cycles are attributed from.
  struct ProcAcct {
    obs::IssueSlotAccount acct;
    std::array<std::uint32_t, kNumStallReasons> waiting{};
  };

  /// Per-region tallies accumulated at stream completion (index = region
  /// id; names resolved through region_name() when published).
  struct RegionTally {
    std::uint64_t streams = 0;
    std::uint64_t instructions = 0;
    std::uint64_t stream_cycles = 0;
  };

  struct Wake {
    std::uint64_t cycle;
    StreamId stream;
    bool operator>(const Wake& o) const {
      return cycle != o.cycle ? cycle > o.cycle : stream > o.stream;
    }
  };

  struct PendingSpawn {
    StreamProgram* program;
    bool software;
    /// Dependency-graph node of the spawning instruction (capture only).
    std::uint32_t cap_parent = 0;
  };

  /// Always-on counters (obs::default_registry(), "mta." prefix) plus the
  /// optional trace sink captured from obs::global_sink() at construction.
  /// Per-instruction paths only bump plain tally members; the registry
  /// counters are published once at the end of run() so instrumentation
  /// costs nothing in the issue loop.
  struct Obs {
    obs::Counter* issue_total = nullptr;
    obs::Counter* issue_compute = nullptr;
    obs::Counter* issue_memory = nullptr;
    obs::Counter* issue_sync = nullptr;
    obs::Counter* issue_spawn = nullptr;
    obs::Counter* network_ops = nullptr;
    obs::Counter* sync_blocks = nullptr;
    obs::Counter* sync_handoffs = nullptr;
    obs::Counter* spawns_hw = nullptr;
    obs::Counter* spawns_sw = nullptr;
    obs::Counter* spawns_virtualized = nullptr;
    obs::Counter* streams_completed = nullptr;
    obs::Counter* runs = nullptr;
    obs::Counter* slot_used = nullptr;
    obs::Counter* slot_no_stream = nullptr;
    obs::Counter* slot_spacing = nullptr;
    obs::Counter* slot_spawn = nullptr;
    obs::Counter* slot_memory = nullptr;
    obs::Counter* slot_sync = nullptr;
    obs::Gauge* peak_live = nullptr;
    obs::Histogram* run_utilization = nullptr;
    obs::Histogram* run_wall_seconds = nullptr;
    obs::Histogram* stream_instructions = nullptr;
    /// The registry the metric pointers above resolve into, kept so
    /// finish_run() publishes dynamically named per-region counters into
    /// the same (possibly thread-scoped) registry the run was built under
    /// even when finalization happens on another scope (batched engine).
    obs::CounterRegistry* registry = nullptr;
    obs::TraceSink* sink = nullptr;
    obs::RunRecordStore* records = nullptr;  ///< active_run_records() at ctor
    obs::TimelineStore* timeline = nullptr;  ///< active_timeline() at ctor
    std::uint32_t pid = 0;
  };

  /// Converts a machine cycle to trace microseconds.
  [[nodiscard]] double ts_us(std::uint64_t cycle) const {
    return static_cast<double>(cycle) / config_.clock_hz * 1e6;
  }

  /// O(1) least-loaded-processor selection: processors indexed by live
  /// stream count, lowest processor id breaking ties (matching the linear
  /// scan it replaced). Loads change by +-1 on activate/finish.
  class LoadTracker {
   public:
    void init(int num_procs, int max_load) {
      loads_.assign(static_cast<std::size_t>(num_procs), 0);
      by_load_.assign(static_cast<std::size_t>(max_load) + 1, {});
      for (int p = 0; p < num_procs; ++p) by_load_[0].insert(p);
      min_load_ = 0;
    }
    [[nodiscard]] int least_loaded() const {
      return *by_load_[static_cast<std::size_t>(min_load_)].begin();
    }
    void change(int proc, int delta) {
      int& load = loads_[static_cast<std::size_t>(proc)];
      by_load_[static_cast<std::size_t>(load)].erase(proc);
      load += delta;
      by_load_[static_cast<std::size_t>(load)].insert(proc);
      if (load < min_load_) {
        min_load_ = load;
      } else {
        while (by_load_[static_cast<std::size_t>(min_load_)].empty())
          ++min_load_;
      }
    }

   private:
    std::vector<int> loads_;
    std::vector<std::set<int>> by_load_;
    int min_load_ = 0;
  };

  /// Loads the stream's next instruction into `cur` (implicit Quit at end
  /// of program), dispatching directly when the program is a
  /// VectorProgram.
  void fetch_next(Stream& s) {
    const bool more = s.vec != nullptr ? s.vec->VectorProgram::next(s.cur)
                                       : s.program->next(s.cur);
    if (!more) {
      s.cur.op = Instr::Op::Quit;
      s.cur.count = 1;
    }
    s.has_cur = true;
  }

  void activate(StreamProgram* program, bool software, std::uint64_t now);
  void issue(StreamId sid, std::uint64_t now);
  void finish_stream(StreamId sid, std::uint64_t now);
  std::uint64_t network_service(std::uint64_t now, Address addr);
  void complete_memory_op(StreamId sid, std::uint64_t now, Address addr);
  void process_handoffs(std::uint64_t now);
  /// Parks `sid` (census +1 under `why`) and queues its wake.
  void push_wake(std::uint64_t at, StreamId sid, StallReason why);
  /// Parks `sid` with no wake: it waits in memory on a full/empty bit.
  void park_sync(StreamId sid);
  void make_stream_ready(StreamId sid);
  /// Attributes `n` idle cycles of processor `proc` to one stall category:
  /// no_stream when the processor has no live streams, otherwise the
  /// highest-priority reason in its parked-stream census
  /// (sync > memory > spawn > spacing).
  void account_idle(int proc, std::uint64_t n);
  /// account_idle over the census plus the solo stream virtually parked
  /// with `solo` (run_solo does not park between fast-forwarded issues).
  void account_solo_idle(int proc, std::uint64_t n, StallReason solo);
  /// Timeline sampling (active_timeline() set at construction): called per
  /// scanned cycle; emits every complete sample bucket ending at or before
  /// `now` from the deltas accumulated since the previous flush.
  void flush_samples(std::uint64_t now);
  /// Emits the trailing partial bucket and hands the run's timeline to the
  /// store.
  void finish_timeline(std::uint64_t now);
  /// Fast-forwards the machine while exactly one stream is ready
  /// machine-wide (see docs/PERFORMANCE.md for the legality argument).
  /// Returns the cycle the generic loop resumes at.
  std::uint64_t run_solo(std::uint64_t now, std::uint64_t max_cycles);
  /// The reference simulation loop (slow_ only): binary-heap wake queue,
  /// one cycle at a time, run in a single unsliced pass by run().
  void run_slow_loop();
  /// Trips the `max_cycles` runaway guard: dumps the cycle, live/pending
  /// stream totals, and the per-category parked-stream census to stderr
  /// (so a deadlocked large scenario is diagnosable from the abort alone),
  /// then aborts via contract_failure.
  [[noreturn]] void runaway_abort(std::uint64_t now) const;
  // Partitioned-run hooks (part_ != nullptr iff a PartitionedMachine is
  // driving this run). push_wake routes wakes to the owning partition's
  // wheel instead of wheel_, and park_sync refreshes the scheduler's
  // hazard bound; both are defined in partitioned_machine.cpp next to the
  // scheduler state they feed.
  void part_route_wake(std::uint64_t at, StreamId sid);
  void part_note_sync_park(StreamId sid);
  /// Per-bucket counter tracks for the trace sink (issue utilization and
  /// memory traffic); no-op without a sink.
  void emit_trace_buckets(std::uint64_t upto, bool final);

  // --- Dependency-graph capture (cap_ != nullptr iff capturing; see
  // docs/CRITICAL_PATH.md). Hooks live only in functions shared by the
  // fast and slow simulation paths (issue / complete_memory_op / activate /
  // finish_stream), and capture disables run_solo, so both paths emit
  // bit-identical graphs. Capture requires lookahead == 0: with lookahead
  // a stream's memory ops overlap in ways the single per-stream chain node
  // cannot express.

  /// Per-stream chain state: the last node on the stream's own dependency
  /// chain and the compute instructions coalesced since it (they become
  /// one issue-spacing edge on the next non-compute event).
  struct CapStream {
    std::uint32_t node = 0;
    std::uint64_t pending = 0;   ///< compute issues since `node`
    std::int32_t region = -1;    ///< stream program's region id
  };
  /// Flushes the stream's coalesced compute run into an issue node at
  /// `now` (the issue of a memory/sync/spawn/quit instruction) and makes
  /// it the stream's chain node and the current memory-op issue node.
  /// `kind` is the attribution category of the memory trip that follows
  /// (kSync for full/empty ops, kMemory for plain loads/stores).
  std::uint32_t cap_issue_node(StreamId sid, std::uint64_t now,
                               obs::DepKind kind);
  /// Appends the run-end node, the issue/network resource bounds and the
  /// region names, embeds the summary in `rec` (when non-null), and hands
  /// the graph to the store.
  void cap_finish_run(std::uint64_t now, obs::RunRecord* rec);

  /// Fixed-point cycle representation for the shared-network and bank
  /// service times (replaces double/ceil in the hottest path). 20
  /// fractional bits leave 44 integer bits of simulated cycles.
  static constexpr unsigned kFpBits = 20;
  static constexpr std::uint64_t kFpOne = 1ull << kFpBits;

  MtaConfig config_;
  bool slow_ = false;  ///< config_.slow_reference or TC3I_SLOW_SIM
  SyncMemory memory_;
  std::vector<Processor> procs_;
  std::vector<Stream> streams_;
  /// Wake queue, fast path: timing wheel sized for the bounded wake
  /// offsets (spacing 21, memory latency ~70 plus queueing).
  sim::TimerWheel<StreamId> wheel_;
  /// Wake queue, reference path (slow_ == true only).
  std::priority_queue<Wake, std::vector<Wake>, std::greater<>> heap_;
  std::queue<PendingSpawn> pending_;
  std::uint64_t network_free_fp_ = 0;
  std::uint64_t service_fp_ = 0;  ///< kFpOne / network_ops_per_cycle
  std::vector<std::uint64_t> bank_free_fp_;  // sized memory_banks when enabled
  LoadTracker load_tracker_;
  int free_slots_ = 0;  ///< machine-wide free hardware stream slots
  std::uint64_t ready_count_ = 0;  ///< streams in ready queues, fast path
  /// Earliest wake pushed during the current issue cycle (fast path);
  /// run()'s window batching uses it to end a drain-free window early when
  /// a spawn schedules a wake inside it.
  std::uint64_t pushed_min_ = ~0ull;

  std::vector<ProcAcct> acct_;  // sized num_processors
  std::vector<RegionTally> region_tallies_;

  // Timeline sampling state (sample_period_ == 0 when inactive). Samples
  // are a pure function of simulated cycles, so the exported series are
  // identical for the fast and slow paths and at any --jobs.
  std::uint64_t sample_period_ = 0;
  std::uint64_t sample_next_ = 0;
  std::uint64_t sample_ready_sum_ = 0;
  std::uint64_t sample_last_issues_ = 0;
  std::uint64_t sample_last_mem_ = 0;
  std::vector<obs::TimelinePoint> tl_util_;
  std::vector<obs::TimelinePoint> tl_ready_;
  std::vector<obs::TimelinePoint> tl_net_;

  // Dependency-graph capture state (see the CapStream block above). The
  // graph is owned here during the run and moved to cap_store_ at the end.
  std::unique_ptr<obs::DepGraph> cap_graph_;
  obs::DepGraph* cap_ = nullptr;  ///< cap_graph_.get() iff capturing
  obs::CritPathStore* cap_store_ = nullptr;  ///< active_critpath() at ctor
  std::vector<CapStream> cap_streams_;       // indexed by StreamId
  /// Issue node of the memory/sync op currently completing; hand-off
  /// resumes drained inside the same issue() call chain from it.
  std::uint32_t cap_cur_issue_ = 0;
  obs::DepKind cap_memory_kind_ = obs::DepKind::kMemory;
  /// Spawn linkage for the next activate(): the spawning instruction's
  /// node and, for virtualized spawns, the quit node that freed the slot.
  std::uint32_t cap_spawn_parent_ = 0;
  std::uint32_t cap_spawn_via_ = 0;  // kNoNode when not slot-limited

  /// Non-null while a PartitionedMachine drives this run (--run-threads).
  PartitionedMachine* part_ = nullptr;
  /// Per-partition issue/stream rollups the partitioned scheduler leaves
  /// for finish_run() to embed in the RunRecord (empty on scalar runs).
  std::vector<obs::PartitionRollup> partition_rollups_;

  Obs obs_;
  int live_streams_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t memory_ops_ = 0;
  std::uint64_t spawns_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t peak_live_ = 0;
  // Plain per-class issue tallies, published to the registry at run() end.
  std::uint64_t issued_compute_ = 0;
  std::uint64_t issued_memory_ = 0;
  std::uint64_t issued_sync_ = 0;
  std::uint64_t issued_spawn_ = 0;
  std::uint64_t sync_blocks_ = 0;
  std::uint64_t sync_handoffs_ = 0;
  bool ran_ = false;

  // Windowed-run state (begin_run .. finish_run). advance_until works on a
  // local copy of `now_` so the hot loop keeps it in a register, writing it
  // back before returning.
  std::uint64_t now_ = 0;
  std::uint64_t max_cycles_ = 0;
  bool begun_ = false;      ///< between begin_run and finish_run
  bool tracing_ = false;    ///< obs_.sink != nullptr, hoisted at begin_run
  std::uint64_t run_start_ns_ = 0;  ///< wall clock for mta.run.wall_seconds
  std::uint64_t trace_bucket_ = 0;
  std::uint64_t trace_next_ = 0;
  std::uint64_t trace_last_instr_ = 0;
  std::uint64_t trace_last_mem_ = 0;
  std::vector<std::uint64_t> bucket_issues_;  // timeline_bucket_cycles only
};

/// True when the TC3I_SLOW_SIM environment variable forces every machine
/// onto the slow reference loop (used by batched-sweep compatibility
/// checks, which must then fall back to scalar run()).
[[nodiscard]] bool slow_sim_forced();

}  // namespace tc3i::mta
