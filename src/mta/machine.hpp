// Stream-level simulator of the Tera MTA.
//
// Mechanisms modeled (the ones the paper's MTA results hinge on):
//   - each processor issues at most one instruction per cycle, chosen from
//     its ready streams (FIFO arbitration);
//   - a stream that issues cannot issue again for `issue_spacing_cycles`
//     (21 on the MTA-1: the paper's "one instruction every 21 cycles" for a
//     lone stream, i.e. ~5% utilization single-threaded);
//   - there is no cache: every memory operation takes
//     `memory_latency_cycles` and passes through a shared network modeled
//     as a serial queue with service rate `network_ops_per_cycle`
//     (the under-development network the paper blames for the 1.4-1.8x
//     two-processor speedups);
//   - full/empty bits provide one-cycle-issue synchronization; blocked
//     streams wait in memory, consuming no issue slots;
//   - hardware thread creation costs ~2 cycles; software (library) thread
//     creation costs 50-100 cycles;
//   - 128 hardware stream slots per processor; additional runtime-created
//     streams wait (virtualized, as the Tera runtime does) until a slot
//     frees.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "mta/processor.hpp"
#include "mta/stream_program.hpp"
#include "mta/sync_memory.hpp"
#include "obs/counters.hpp"

namespace tc3i::obs {
class TraceSink;
}

namespace tc3i::mta {

struct MtaConfig {
  std::string name = "Tera MTA";
  int num_processors = 1;
  double clock_hz = 255e6;
  int streams_per_processor = 128;
  int issue_spacing_cycles = 21;
  int memory_latency_cycles = 70;
  /// Aggregate memory-network service rate (operations per cycle, shared by
  /// all processors).
  double network_ops_per_cycle = 0.45;
  int hw_spawn_cycles = 2;
  int sw_spawn_cycles = 60;
  /// Explicit-dependence lookahead: how many memory operations a stream
  /// may leave outstanding while continuing to issue. The real MTA
  /// encoded a lookahead of up to 7 in each instruction; 0 models fully
  /// dependent code (each memory op stalls its stream), which is the
  /// conservative default all headline results use. See
  /// bench/ablate_mta_lookahead.
  int lookahead = 0;
  std::size_t memory_words = 1u << 20;
  /// Interleaved memory banks (the MTA-1 had 64-way interleaving). 0
  /// models ideal interleaving (every op hits a distinct bank; the only
  /// memory constraint is the network) — the headline-results default.
  /// When > 0, an op to bank b (selected by address, see hash_addresses)
  /// must wait for the bank's previous op to retire plus
  /// `bank_busy_cycles`.
  int memory_banks = 0;
  int bank_busy_cycles = 8;
  /// The real machine hashed addresses across banks so strided code would
  /// not pathologically conflict; disable to see why (ablation).
  bool hash_addresses = true;
  /// When nonzero, the run records issue-slot utilization per bucket of
  /// this many cycles (MtaRunResult::utilization_timeline) — used to
  /// visualize latency masking and barrier valleys.
  std::uint64_t timeline_bucket_cycles = 0;

  [[nodiscard]] std::string validate() const;
};

struct MtaRunResult {
  std::uint64_t cycles = 0;
  Seconds seconds = 0.0;
  std::uint64_t instructions_issued = 0;
  std::uint64_t memory_ops = 0;
  std::uint64_t spawns = 0;
  std::uint64_t streams_completed = 0;
  std::uint64_t peak_live_streams = 0;
  /// Issue slots used / issue slots available over the run.
  double processor_utilization = 0.0;
  /// Fraction of the shared network's service capacity consumed.
  double network_utilization = 0.0;
  /// Per-bucket issue-slot utilization (empty unless
  /// MtaConfig::timeline_bucket_cycles is set).
  std::vector<double> utilization_timeline;
};

class Machine {
 public:
  explicit Machine(MtaConfig config);

  [[nodiscard]] const MtaConfig& config() const { return config_; }
  [[nodiscard]] SyncMemory& memory() { return memory_; }
  [[nodiscard]] const SyncMemory& memory() const { return memory_; }

  /// Registers a stream to start at cycle 0 (assigned to the least-loaded
  /// processor). Call before run().
  void add_stream(StreamProgram* program);

  /// Runs until all streams have quit. Aborts (deadlock) if streams remain
  /// but none can ever become ready. `max_cycles` is a runaway guard.
  MtaRunResult run(std::uint64_t max_cycles = (1ull << 62));

 private:
  struct Stream {
    StreamProgram* program = nullptr;
    int proc = -1;
    Instr cur;
    bool has_cur = false;
    bool dead = false;
    /// Completion cycles of outstanding memory ops (lookahead > 0 only;
    /// monotonically increasing, bounded by lookahead + 1).
    std::deque<std::uint64_t> outstanding;
  };

  struct Wake {
    std::uint64_t cycle;
    StreamId stream;
    bool operator>(const Wake& o) const {
      return cycle != o.cycle ? cycle > o.cycle : stream > o.stream;
    }
  };

  struct PendingSpawn {
    StreamProgram* program;
    bool software;
  };

  /// Always-on counters (obs::default_registry(), "mta." prefix) plus the
  /// optional trace sink captured from obs::global_sink() at construction.
  /// Per-instruction paths only bump plain tally members; the registry
  /// counters are published once at the end of run() so instrumentation
  /// costs nothing in the issue loop.
  struct Obs {
    obs::Counter* issue_total = nullptr;
    obs::Counter* issue_compute = nullptr;
    obs::Counter* issue_memory = nullptr;
    obs::Counter* issue_sync = nullptr;
    obs::Counter* issue_spawn = nullptr;
    obs::Counter* network_ops = nullptr;
    obs::Counter* sync_blocks = nullptr;
    obs::Counter* sync_handoffs = nullptr;
    obs::Counter* spawns_hw = nullptr;
    obs::Counter* spawns_sw = nullptr;
    obs::Counter* spawns_virtualized = nullptr;
    obs::Counter* streams_completed = nullptr;
    obs::Counter* runs = nullptr;
    obs::Gauge* peak_live = nullptr;
    obs::Histogram* run_utilization = nullptr;
    obs::Histogram* run_wall_seconds = nullptr;
    obs::TraceSink* sink = nullptr;
    std::uint32_t pid = 0;
  };

  /// Converts a machine cycle to trace microseconds.
  [[nodiscard]] double ts_us(std::uint64_t cycle) const {
    return static_cast<double>(cycle) / config_.clock_hz * 1e6;
  }

  int least_loaded_processor() const;
  void activate(StreamProgram* program, bool software, std::uint64_t now);
  void issue(StreamId sid, std::uint64_t now);
  void finish_stream(StreamId sid, std::uint64_t now);
  std::uint64_t network_service(std::uint64_t now, Address addr);
  void complete_memory_op(StreamId sid, std::uint64_t now, Address addr);
  void process_handoffs(std::uint64_t now);

  MtaConfig config_;
  SyncMemory memory_;
  std::vector<Processor> procs_;
  std::vector<Stream> streams_;
  std::priority_queue<Wake, std::vector<Wake>, std::greater<>> wakes_;
  std::queue<PendingSpawn> pending_;
  double network_free_at_ = 0.0;
  std::vector<double> bank_free_at_;  // sized memory_banks when enabled

  Obs obs_;
  int live_streams_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t memory_ops_ = 0;
  std::uint64_t spawns_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t peak_live_ = 0;
  // Plain per-class issue tallies, published to the registry at run() end.
  std::uint64_t issued_compute_ = 0;
  std::uint64_t issued_memory_ = 0;
  std::uint64_t issued_sync_ = 0;
  std::uint64_t issued_spawn_ = 0;
  std::uint64_t sync_blocks_ = 0;
  std::uint64_t sync_handoffs_ = 0;
  bool ran_ = false;
};

}  // namespace tc3i::mta
