// Processor is header-only; this translation unit exists so the class has a
// home object file and to keep one place for future out-of-line growth.
#include "mta/processor.hpp"
