#include "mta/partitioned_machine.hpp"

#include <algorithm>
#include <string>

#include "core/contracts.hpp"
#include "obs/flight.hpp"
#include "obs/live.hpp"

namespace tc3i::mta {

namespace {

/// Hazard instructions execute only at serial cycles: they mutate state
/// shared across partitions (sync memory, stream structure, the registry).
[[nodiscard]] bool is_hazard(Instr::Op op) {
  return op == Instr::Op::SyncLoad || op == Instr::Op::SyncStore ||
         op == Instr::Op::Spawn || op == Instr::Op::Quit;
}

/// Saturating add for suffix sums (counts are caller-supplied uint64s; the
/// bound only needs to stay a lower bound, so clamping is always safe).
constexpr std::uint64_t kSatCap = 1ull << 62;
[[nodiscard]] std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return (s < a || s > kSatCap) ? kSatCap : s;
}

/// Windows shorter than this run sequentially on the coordinator (same
/// code path, so still bit-exact); the barrier hand-off costs more than
/// the parallelism recovers.
constexpr std::uint64_t kMinParallelWindow = 8;

}  // namespace

// --- Machine-side hooks ----------------------------------------------------

void Machine::part_route_wake(std::uint64_t at, StreamId sid) {
  part_->route_wake(at, sid);
}

void Machine::part_note_sync_park(StreamId sid) {
  part_->note_sync_park(sid);
}

// --- Construction / eligibility -------------------------------------------

bool PartitionedMachine::eligible(const Machine& machine, int threads) {
  if (std::min(threads, machine.config_.num_processors) < 2) return false;
  if (machine.slow_) return false;
  if (machine.config_.lookahead != 0) return false;
  // Deferred window parks always use census reason kMemory; that matches
  // scalar only when the network trip always outlasts the spacing window.
  if (machine.config_.memory_latency_cycles <
      machine.config_.issue_spacing_cycles)
    return false;
  // Per-instruction observers pin scalar, exactly as --jobs > 1 does.
  if (machine.obs_.sink != nullptr) return false;
  if (machine.sample_period_ != 0) return false;
  if (machine.config_.timeline_bucket_cycles > 0) return false;
  if (machine.cap_ != nullptr) return false;
  return true;
}

PartitionedMachine::PartitionedMachine(Machine& machine, int threads)
    : m_(machine) {
  TC3I_EXPECTS(eligible(machine, threads));
  TC3I_EXPECTS(!machine.ran_);
  nparts_ = std::min(threads, m_.config_.num_processors);
  spacing_ = static_cast<std::uint64_t>(m_.config_.issue_spacing_cycles);
  wmax_ = static_cast<std::uint64_t>(m_.config_.memory_latency_cycles) + 1;
  ncap_ = kSatCap / spacing_;
  const auto nprocs = static_cast<std::size_t>(m_.config_.num_processors);
  parts_ = std::vector<Part>(static_cast<std::size_t>(nparts_));
  part_of_proc_.resize(nprocs);
  for (int k = 0; k < nparts_; ++k) {
    Part& p = parts_[static_cast<std::size_t>(k)];
    p.proc_lo = nprocs * static_cast<std::size_t>(k) /
                static_cast<std::size_t>(nparts_);
    p.proc_hi = nprocs * static_cast<std::size_t>(k + 1) /
                static_cast<std::size_t>(nparts_);
    for (std::size_t pi = p.proc_lo; pi < p.proc_hi; ++pi)
      part_of_proc_[pi] = k;
  }
}

PartitionedMachine::~PartitionedMachine() { stop_workers(); }

// --- Hazard bookkeeping ----------------------------------------------------

const std::uint64_t* PartitionedMachine::suffix_for(VectorProgram* vec) {
  if (vec == nullptr) return nullptr;
  auto [it, fresh] = suffix_cache_.try_emplace(vec);
  if (fresh) {
    const std::vector<Instr>& ins = vec->instructions();
    std::vector<std::uint64_t>& suf = it->second;
    // suf[i]: non-hazard issues from entry i to the next hazard; the
    // one-past-the-end slot is the implicit Quit (a hazard, distance 0).
    suf.assign(ins.size() + 1, 0);
    for (std::size_t i = ins.size(); i-- > 0;) {
      if (!is_hazard(ins[i].op)) suf[i] = sat_add(ins[i].count, suf[i + 1]);
    }
  }
  return it->second.data();
}

void PartitionedMachine::register_stream(StreamId sid) {
  const auto i = static_cast<std::size_t>(sid);
  if (i >= hs_.size()) {
    hs_.resize(i + 1);
    suffix_.resize(i + 1, nullptr);
  }
  suffix_[i] = suffix_for(m_.streams_[i].vec);
}

std::uint64_t PartitionedMachine::bound_at(std::uint64_t wake,
                                           std::uint64_t n) const {
  // The stream becomes ready no earlier than `wake` and issues at most
  // once per spacing window, so its next hazard issues at or after
  // wake + n * spacing. Saturate instead of overflowing.
  if (n == 0) return wake;
  if (n > ncap_) return sat_add(wake, kSatCap);
  return sat_add(wake, n * spacing_);
}

std::uint64_t PartitionedMachine::refresh_bound(StreamId sid,
                                                std::uint64_t wake) {
  const auto i = static_cast<std::size_t>(sid);
  const Machine::Stream& s = m_.streams_[i];
  const std::uint64_t* suf = suffix_[i];
  std::uint64_t n = 0;
  // Callback programs (suf == nullptr): next() may depend on deliver()ed
  // values, so no prefetching — every issue is a potential hazard (n = 0).
  if (suf != nullptr) {
    if (s.has_cur) {
      n = is_hazard(s.cur.op)
              ? 0
              : sat_add(s.cur.count, suf[s.vec->position()]);
    } else {
      n = suf[s.vec->position()];
    }
  }
  const std::uint64_t h = bound_at(wake, n);
  hs_[i] = HazardState{h, n};
  return h;
}

std::uint64_t PartitionedMachine::next_hazard_bound(std::uint64_t horizon) {
  while (!hazard_heap_.empty()) {
    const HazardEntry e = hazard_heap_.top();
    // Entries are pushed at the h_cur of their moment and only go stale
    // DOWNWARD (h_cur only grows), so the top is a valid lower bound on
    // every stream's next hazard even when stale. Once it clears
    // `horizon` — past the widest window the caller can dispatch — its
    // exact value is irrelevant, and skipping validation here is what
    // keeps the heap from churning through every bound refresh: an entry
    // is only ever popped when the clock has nearly caught up with it.
    if (e.h >= horizon) return e.h;
    const auto i = static_cast<std::size_t>(e.sid);
    if (m_.streams_[i].dead || hs_[i].h == kInf) {
      hazard_heap_.pop();
      continue;
    }
    if (e.h < hs_[i].h) {
      // Stale (bounds only grow as a stream advances): refresh in place.
      hazard_heap_.pop();
      hazard_heap_.push(HazardEntry{hs_[i].h, e.sid});
      continue;
    }
    return e.h;
  }
  return kInf;
}

// --- Wake routing ----------------------------------------------------------

void PartitionedMachine::route_wake(std::uint64_t at, StreamId sid) {
  const auto i = static_cast<std::size_t>(sid);
  // Serial-cycle wakes only: activations (new streams), compute/spawn
  // spacing wakes, and post-hand-off memory trips. Window issues park
  // through window_issue/replay_deferred instead.
  if (i >= hs_.size()) register_stream(sid);
  const bool was_parked = hs_[i].h == kInf;
  const std::uint64_t h = refresh_bound(sid, at);
  // New streams and sync re-parks need a heap entry; finite-to-finite
  // updates are covered by lazy revalidation (h never decreases).
  if (was_parked) hazard_heap_.push(HazardEntry{h, sid});
  const int proc = m_.streams_[i].proc;
  parts_[static_cast<std::size_t>(part_of_proc_[static_cast<std::size_t>(
             proc)])]
      .wheel.push(at, sid);
}

void PartitionedMachine::note_sync_park(StreamId sid) {
  // Blocked on a full/empty bit: no wake, no hazard bound until a hand-off
  // re-parks it through route_wake (stale heap entries drop on pop).
  hs_[static_cast<std::size_t>(sid)].h = kInf;
}

// --- Scheduler loop --------------------------------------------------------

void PartitionedMachine::redistribute() {
  // Initial streams were parked into the scalar wheel before this engine
  // attached; deal them out to their owners and seed the hazard state.
  hs_.resize(m_.streams_.size());
  suffix_.resize(m_.streams_.size(), nullptr);
  m_.wheel_.drain_all([this](std::uint64_t at, StreamId sid) {
    register_stream(sid);
    route_wake(at, sid);
  });
}

std::uint64_t PartitionedMachine::global_next_due() const {
  std::uint64_t best = sim::TimerWheel<StreamId>::kNone;
  for (const Part& p : parts_) best = std::min(best, p.wheel.next_due());
  return best;
}

bool PartitionedMachine::any_partition_ready() const {
  for (const Part& p : parts_)
    if (p.ready > 0) return true;
  return false;
}

void PartitionedMachine::make_ready_local(Part& part, StreamId sid) {
  const Machine::Stream& s = m_.streams_[static_cast<std::size_t>(sid)];
  --m_.acct_[static_cast<std::size_t>(s.proc)]
        .waiting[static_cast<std::size_t>(s.wait_reason)];
  m_.procs_[static_cast<std::size_t>(s.proc)].make_ready(sid);
  ++part.ready;
}

void PartitionedMachine::window_issue(Part& part, StreamId sid,
                                      std::uint64_t now) {
  Machine::Stream& s = m_.streams_[static_cast<std::size_t>(sid)];
  ++s.issued;
  if (!s.has_cur) m_.fetch_next(s);
  // E <= hmin guarantees no hazard can issue inside a window.
  TC3I_ASSERT(!is_hazard(s.cur.op));

  // Each window issue consumes exactly one non-hazard issue, so the
  // cached count just decrements — no VectorProgram dereference (the
  // pointer chase was the dominant per-issue cost on the window path).
  HazardState& hz = hs_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(hz.n > 0);
  const std::uint64_t n = --hz.n;

  if (s.cur.op == Instr::Op::Compute) {
    ++part.d_compute;
    TC3I_ASSERT(s.cur.count > 0);
    if (--s.cur.count == 0) s.has_cur = false;
    const std::uint64_t wake = now + spacing_;
    s.wait_reason = Machine::StallReason::kSpacing;
    ++m_.acct_[static_cast<std::size_t>(s.proc)].waiting[static_cast<
        std::size_t>(Machine::StallReason::kSpacing)];
    hz.h = bound_at(wake, n);
    part.wheel.push(wake, sid);
    return;
  }

  // Load/Store: the network is a shared serial queue, so service is
  // deferred to the barrier. Park now — always a memory stall, because
  // eligibility requires memory_latency >= issue_spacing, making the
  // service completion strictly later than the spacing window. The hazard
  // bound is refreshed at replay, when the wake is known (the stale bound
  // is still a valid lower bound meanwhile).
  ++part.d_memory;
  TC3I_ASSERT(s.cur.count > 0);
  const Address addr = s.cur.addr;
  const Word value = s.cur.value;
  const bool is_store = s.cur.op == Instr::Op::Store;
  if (--s.cur.count == 0) s.has_cur = false;
  s.wait_reason = Machine::StallReason::kMemory;
  ++m_.acct_[static_cast<std::size_t>(s.proc)].waiting[static_cast<
      std::size_t>(Machine::StallReason::kMemory)];
  part.deferred.push_back(DeferredMem{now, s.proc, sid, addr, value,
                                      is_store});
}

void PartitionedMachine::run_window(Part& part, std::uint64_t begin,
                                    std::uint64_t end) {
  // The per-partition mirror of advance_until's window batching: drain own
  // wakes, issue front-of-FIFO per processor per cycle, attribute idle
  // slots from the partition's own census, jump over dead spans. No wake
  // from outside the partition can land before `end`, and no issue here
  // pushes a wake earlier than now + spacing, so the batching needs no
  // pushed_min_ shrinking.
  std::uint64_t now = begin;
  while (now < end) {
    part.wheel.drain_due(now, [this, &part](std::uint64_t, StreamId sid) {
      make_ready_local(part, sid);
    });
    std::uint64_t limit = std::min(end, now + spacing_);
    const std::uint64_t nd = part.wheel.next_due();
    if (nd < limit) limit = nd;
    if (limit <= now) limit = now + 1;
    bool any_ready = true;
    while (any_ready && now < limit) {
      any_ready = false;
      for (std::size_t pi = part.proc_lo; pi < part.proc_hi; ++pi) {
        Processor& p = m_.procs_[pi];
        if (p.has_ready()) {
          any_ready = true;
          --part.ready;
          window_issue(part, p.pop_ready(), now);
        } else {
          m_.account_idle(p.id(), 1);
        }
      }
      if (any_ready) ++now;
    }
    if (!any_ready) {
      // The scan attributed cycle `now`; jump to the partition's next wake
      // (or the window end), attributing the skipped span under the
      // unchanged census.
      const std::uint64_t nd2 = part.wheel.next_due();
      std::uint64_t next = nd2 == sim::TimerWheel<StreamId>::kNone
                               ? end
                               : std::min(end, std::max(now + 1, nd2));
      if (next <= now) next = now + 1;
      if (next - now > 1)
        for (std::size_t pi = part.proc_lo; pi < part.proc_hi; ++pi)
          m_.account_idle(static_cast<int>(pi), next - now - 1);
      now = next;
    }
  }
}

void PartitionedMachine::dispatch_window(std::uint64_t begin,
                                         std::uint64_t end) {
  ++windows_;
  if ((windows_ & 31) == 0) {
    obs::flight::emit(obs::flight::EventKind::kRunWindow, begin, end);
    obs::flight::emit(obs::flight::EventKind::kRunBarrier, end,
                      static_cast<std::uint64_t>(nparts_));
  }
  if ((windows_ & 255) == 0) {
    if (obs::LiveBus* bus = obs::live_bus()) {
      std::uint32_t occupied = 0;
      for (const Part& p : parts_)
        if (p.ready > 0 || !p.wheel.empty()) ++occupied;
      bus->heartbeat(0, occupied);
    }
  }
  if (end - begin < kMinParallelWindow || workers_.empty()) {
    for (Part& p : parts_) run_window(p, begin, end);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      win_begin_ = begin;
      win_end_ = end;
      pending_workers_ = nparts_ - 1;
      ++generation_;
    }
    cv_work_.notify_all();
    run_window(parts_[0], begin, end);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return pending_workers_ == 0; });
  }
  replay_deferred();
  for (Part& p : parts_) {
    m_.issued_compute_ += p.d_compute;
    m_.issued_memory_ += p.d_memory;
    p.d_compute = 0;
    p.d_memory = 0;
  }
}

void PartitionedMachine::replay_deferred() {
  // K-way merge of the per-partition buffers in (cycle, proc) order — the
  // scalar issue order — replayed through the real network model so
  // network_free_fp_ / bank_free_fp_ / memory_ops_ evolve bit-identically.
  std::vector<std::size_t> idx(parts_.size(), 0);
  for (;;) {
    int best = -1;
    for (std::size_t k = 0; k < parts_.size(); ++k) {
      if (idx[k] >= parts_[k].deferred.size()) continue;
      if (best < 0) {
        best = static_cast<int>(k);
        continue;
      }
      const DeferredMem& a = parts_[k].deferred[idx[k]];
      const DeferredMem& b =
          parts_[static_cast<std::size_t>(best)]
              .deferred[idx[static_cast<std::size_t>(best)]];
      if (a.cycle < b.cycle || (a.cycle == b.cycle && a.proc < b.proc))
        best = static_cast<int>(k);
    }
    if (best < 0) break;
    const DeferredMem& d =
        parts_[static_cast<std::size_t>(best)]
            .deferred[idx[static_cast<std::size_t>(best)]++];
    if (d.is_store) m_.memory_.store(d.addr, d.value);
    const std::uint64_t done = m_.network_service(d.cycle, d.addr);
    const std::uint64_t spacing_end = d.cycle + spacing_;
    TC3I_ASSERT(done > spacing_end &&
                "deferred service must outlast the spacing window");
    const std::uint64_t wake = std::max(done, spacing_end);
    HazardState& hz = hs_[static_cast<std::size_t>(d.sid)];
    hz.h = bound_at(wake, hz.n);
    parts_[static_cast<std::size_t>(
               part_of_proc_[static_cast<std::size_t>(d.proc)])]
        .wheel.push(wake, d.sid);
  }
  for (Part& p : parts_) p.deferred.clear();
}

void PartitionedMachine::serial_cycle(std::uint64_t& now) {
  // One cycle in exactly the scalar loop's shape (wheels already drained
  // by the caller): scan processors in id order, issue through
  // Machine::issue so hazards run their full scalar paths.
  ++serial_scans_;
  bool any_ready = false;
  for (std::size_t pi = 0; pi < m_.procs_.size(); ++pi) {
    Processor& p = m_.procs_[pi];
    if (p.has_ready()) {
      any_ready = true;
      --parts_[static_cast<std::size_t>(part_of_proc_[pi])].ready;
      m_.issue(p.pop_ready(), now);
    } else {
      m_.account_idle(p.id(), 1);
    }
  }
  if (any_ready) {
    ++now;
    return;
  }
  const std::uint64_t gn = global_next_due();
  if (gn != sim::TimerWheel<StreamId>::kNone) {
    const std::uint64_t next = std::max(now + 1, gn);
    if (next - now > 1)
      for (auto& p : m_.procs_) m_.account_idle(p.id(), next - now - 1);
    now = next;
  } else {
    // No stream can ever become ready again: every remaining stream is
    // blocked on a full/empty bit that nobody will flip.
    TC3I_ASSERT(m_.live_streams_ == 0 && m_.pending_.empty());
  }
}

void PartitionedMachine::main_loop() {
  std::uint64_t now = m_.now_;
  const std::uint64_t max_cycles = m_.max_cycles_;
  while (m_.live_streams_ > 0 || !m_.pending_.empty()) {
    if (now >= max_cycles) m_.runaway_abort(now);
    for (Part& p : parts_)
      p.wheel.drain_due(now, [this, &p](std::uint64_t, StreamId sid) {
        make_ready_local(p, sid);
      });
    // Window base: `now`, or — when nothing is ready anywhere — the next
    // wake, so one window also swallows the idle span (work in it cannot
    // start earlier anyway).
    std::uint64_t base = now;
    if (!any_partition_ready()) {
      const std::uint64_t gn = global_next_due();
      if (gn == sim::TimerWheel<StreamId>::kNone) {
        // Nothing ready, nothing pending in any wheel: mirror of the
        // scalar dead-wheel check.
        TC3I_ASSERT(m_.live_streams_ == 0 && m_.pending_.empty());
        break;
      }
      base = std::max(base, gn);
    }
    const std::uint64_t hmin = next_hazard_bound(sat_add(base, wmax_ + 1));
    if (hmin <= now) {
      // A hazard may issue this cycle: run it serially. (hmin <= now is
      // always a validated bound — below-horizon entries are refreshed —
      // and implies the stream has already drained into a ready FIFO.)
      serial_cycle(now);
      continue;
    }
    // Conservative window [now, E): no hazard can issue before hmin, and
    // deferred memory service completes at or after B + 1 + latency, so
    // E <= base + latency + 1 keeps every barrier wake on time.
    std::uint64_t end = std::min(hmin, sat_add(base, wmax_));
    if (end <= now) end = now + 1;
    dispatch_window(now, end);
    now = end;
  }
  m_.now_ = now;
}

// --- Worker pool -----------------------------------------------------------

void PartitionedMachine::start_workers() {
  workers_.reserve(static_cast<std::size_t>(nparts_ - 1));
  for (int k = 1; k < nparts_; ++k)
    workers_.emplace_back(
        [this, k] { worker_loop(static_cast<std::size_t>(k)); });
}

void PartitionedMachine::worker_loop(std::size_t part_index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t begin;
    std::uint64_t end;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk,
                    [this, seen] { return generation_ != seen || shutdown_; });
      if (shutdown_) return;
      seen = generation_;
      begin = win_begin_;
      end = win_end_;
    }
    run_window(parts_[part_index], begin, end);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --pending_workers_;
    }
    cv_done_.notify_one();
  }
}

void PartitionedMachine::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

// --- Rollups ---------------------------------------------------------------

void PartitionedMachine::publish_rollups() {
  obs::CounterRegistry& reg = *m_.obs_.registry;
  reg.counter("mta.partition.windows").add(windows_);
  reg.counter("mta.partition.serial_cycles").add(serial_scans_);
  std::vector<std::uint64_t> instr(parts_.size(), 0);
  std::vector<std::uint64_t> streams(parts_.size(), 0);
  for (std::size_t k = 0; k < parts_.size(); ++k)
    for (std::size_t pi = parts_[k].proc_lo; pi < parts_[k].proc_hi; ++pi)
      instr[k] += m_.procs_[pi].issues();
  for (const Machine::Stream& s : m_.streams_)
    if (s.dead)
      ++streams[static_cast<std::size_t>(
          part_of_proc_[static_cast<std::size_t>(s.proc)])];
  m_.partition_rollups_.clear();
  for (std::size_t k = 0; k < parts_.size(); ++k) {
    const std::string base = "mta.partition.p" + std::to_string(k);
    reg.counter(base + ".instructions").add(instr[k]);
    reg.counter(base + ".streams").add(streams[k]);
    m_.partition_rollups_.push_back(obs::PartitionRollup{
        static_cast<int>(k),
        static_cast<int>(parts_[k].proc_hi - parts_[k].proc_lo), instr[k],
        streams[k]});
  }
}

// --- Entry points ----------------------------------------------------------

MtaRunResult PartitionedMachine::run(std::uint64_t max_cycles) {
  m_.begin_run(max_cycles);
  redistribute();
  m_.part_ = this;
  start_workers();
  main_loop();
  stop_workers();
  publish_rollups();
  m_.part_ = nullptr;
  return m_.finish_run();
}

MtaRunResult run_partitioned(Machine& machine, int threads,
                             std::uint64_t max_cycles) {
  if (!PartitionedMachine::eligible(machine, threads))
    return machine.run(max_cycles);
  PartitionedMachine pm(machine, threads);
  return pm.run(max_cycles);
}

}  // namespace tc3i::mta
