#include "mta/batched_machine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>

#include "core/contracts.hpp"
#include "obs/counters.hpp"
#include "obs/critpath.hpp"
#include "obs/flight.hpp"
#include "obs/hostres.hpp"
#include "obs/live.hpp"
#include "obs/run_record.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sweep.hpp"
#include "sthreads/thread.hpp"

namespace tc3i::mta {

namespace {

// Process-wide bank of released arenas. Every engine's lanes start cold;
// without this, each sweep (and each rep of a benchmark loop) re-pays
// `lanes` fresh 16 MiB word-array allocations, which gprof shows dwarfing
// the simulation itself. The bank is touched only on an engine's local
// pool miss and in its destructor, so the per-point hot path stays
// lock-free. Capped: at the default config a full bank is 1 GiB.
std::mutex g_arena_bank_mu;
std::vector<SyncMemory::Arena> g_arena_bank;  // NOLINT
constexpr std::size_t kArenaBankCap = 64;

bool take_from_bank(std::size_t size, SyncMemory::Arena& out) {
  const std::lock_guard<std::mutex> lock(g_arena_bank_mu);
  for (std::size_t a = 0; a < g_arena_bank.size(); ++a) {
    if (g_arena_bank[a].size() == size) {
      out = std::move(g_arena_bank[a]);
      g_arena_bank.erase(g_arena_bank.begin() +
                         static_cast<std::ptrdiff_t>(a));
      return true;
    }
  }
  return false;
}

void give_to_bank(std::vector<SyncMemory::Arena>&& arenas) {
  const std::lock_guard<std::mutex> lock(g_arena_bank_mu);
  for (SyncMemory::Arena& a : arenas) {
    if (g_arena_bank.size() >= kArenaBankCap) break;
    g_arena_bank.push_back(std::move(a));
  }
}

}  // namespace

BatchedMachine::BatchedMachine(int lanes, std::uint64_t window_cycles)
    : lanes_(lanes), window_(window_cycles) {
  TC3I_EXPECTS(lanes >= 1 && window_cycles >= 1);
  lane_now_.assign(static_cast<std::size_t>(lanes), 0);
  lane_active_.assign(static_cast<std::size_t>(lanes), 0);
  cold_.resize(static_cast<std::size_t>(lanes));
  arenas_.reserve(static_cast<std::size_t>(lanes));
}

void BatchedMachine::admit(std::size_t index, const BatchPoint& point,
                           obs::CounterRegistry* registry,
                           obs::RunRecordStore* records,
                           obs::TimelineStore* timeline) {
  TC3I_EXPECTS(has_free_lane());
  int slot = -1;
  for (int i = 0; i < lanes_; ++i) {
    if (lane_active_[static_cast<std::size_t>(i)] == 0) {
      slot = i;
      break;
    }
  }
  TC3I_ASSERT(slot >= 0);
  Lane& lane = cold_[static_cast<std::size_t>(slot)];

  // The machine captures its metric/record/timeline pointers at
  // construction, so installing the point's scopes here binds the whole
  // lane — including every later advance_until slice, which runs outside
  // any scope — to the point's own stores.
  std::optional<obs::ScopedRegistry> reg_scope;
  if (registry != nullptr) reg_scope.emplace(*registry);
  std::optional<obs::ScopedRunRecords> rec_scope;
  if (records != nullptr) rec_scope.emplace(*records);
  std::optional<obs::ScopedTimeline> tl_scope;
  if (timeline != nullptr) tl_scope.emplace(*timeline);
  const obs::ScopedScenarioLabel label(point.scenario);

  SyncMemory::Arena arena;
  bool recycled = false;
  for (std::size_t a = 0; a < arenas_.size(); ++a) {
    if (arenas_[a].size() == point.config.memory_words) {
      arena = std::move(arenas_[a]);
      arenas_.erase(arenas_.begin() + static_cast<std::ptrdiff_t>(a));
      recycled = true;
      break;
    }
  }
  if (!recycled) recycled = take_from_bank(point.config.memory_words, arena);
  if (recycled) ++stats_.arena_reuses;
  obs::flight::emit(recycled ? obs::flight::EventKind::kArenaAdopt
                             : obs::flight::EventKind::kArenaMiss,
                    point.config.memory_words);
  obs::flight::emit(obs::flight::EventKind::kLaneAdmit, index,
                    static_cast<std::uint64_t>(slot));
  lane.machine = std::make_unique<Machine>(point.config, std::move(arena));
  TC3I_EXPECTS(!lane.machine->uses_slow_reference());
  lane.pool = std::make_unique<ProgramPool>();
  point.build(*lane.machine, *lane.pool);
  lane.machine->begin_run();

  lane.scenario = point.scenario;
  lane.point_index = index;
  lane_now_[static_cast<std::size_t>(slot)] = 0;
  lane_active_[static_cast<std::size_t>(slot)] = 1;
  ++active_count_;
  ++stats_.points_admitted;
}

BatchedMachine::~BatchedMachine() { give_to_bank(std::move(arenas_)); }

void BatchedMachine::advance_window() {
  ++stats_.windows;
  for (int i = 0; i < lanes_; ++i) {
    const auto li = static_cast<std::size_t>(i);
    if (lane_active_[li] == 0) continue;
    ++stats_.lane_advances;
    Machine& m = *cold_[li].machine;
    const bool done = m.advance_until(lane_now_[li] + window_);
    lane_now_[li] = m.now();
    if (done) retire(i);
  }
}

void BatchedMachine::retire(int lane_index) {
  const auto li = static_cast<std::size_t>(lane_index);
  Lane& lane = cold_[li];
  {
    // RunRecordStore::add stamps the thread-local scenario label at add
    // time; finish_run must therefore run under this lane's label.
    const obs::ScopedScenarioLabel label(lane.scenario);
    finished_.emplace_back(lane.point_index, lane.machine->finish_run());
  }
  if (arenas_.size() < static_cast<std::size_t>(lanes_))
    arenas_.push_back(std::move(*lane.machine).release_memory_arena());
  obs::flight::emit(obs::flight::EventKind::kLaneRetire, lane.point_index,
                    static_cast<std::uint64_t>(lane_index));
  lane.machine.reset();
  lane.pool.reset();
  lane_active_[li] = 0;
  --active_count_;
}

std::vector<std::pair<std::size_t, MtaRunResult>>
BatchedMachine::take_finished() {
  std::vector<std::pair<std::size_t, MtaRunResult>> out;
  out.swap(finished_);
  return out;
}

std::vector<MtaRunResult> run_batched_sweep(
    const std::vector<BatchPoint>& points, int lanes, int jobs) {
  const std::size_t count = points.size();
  TC3I_EXPECTS(jobs >= 1);
  bool needs_slow = slow_sim_forced();
  for (const BatchPoint& p : points)
    needs_slow = needs_slow || p.config.slow_reference;
  const bool scalar = lanes <= 1 || count <= 1 || needs_slow ||
                      obs::global_sink() != nullptr ||
                      obs::active_critpath() != nullptr;
  if (scalar) {
    // Byte-for-byte the pre-batched code shape: one machine per point,
    // run_sweep providing the host-parallel isolation contract.
    return sim::run_sweep(count, jobs, [&](std::size_t i) {
      const BatchPoint& p = points[i];
      const obs::ScopedScenarioLabel label(p.scenario);
      Machine machine(p.config);
      ProgramPool pool;
      p.build(machine, pool);
      return machine.run();
    });
  }

  // Batched path. Unlike scalar jobs == 1, isolation is mandatory at any
  // worker count: lanes interleave on one thread, so last-write-wins
  // gauges (and record/timeline ordering) only match a serial run if every
  // point writes to its own stores, merged in submission order below.
  std::vector<MtaRunResult> results(count);
  sim::detail::SweepProgress progress(count);
  obs::SweepSchedStore* sched = obs::sweep_sched_store();
  std::vector<std::unique_ptr<obs::CounterRegistry>> registries(count);
  for (auto& r : registries) r = std::make_unique<obs::CounterRegistry>();
  obs::RunRecordStore* parent_records = obs::active_run_records();
  obs::TimelineStore* parent_timeline = obs::active_timeline();
  std::vector<std::unique_ptr<obs::RunRecordStore>> record_stores(count);
  std::vector<std::unique_ptr<obs::TimelineStore>> timeline_stores(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (parent_records != nullptr)
      record_stores[i] = std::make_unique<obs::RunRecordStore>();
    if (parent_timeline != nullptr)
      timeline_stores[i] = std::make_unique<obs::TimelineStore>(
          parent_timeline->sample_period_cycles());
  }

  const std::size_t lane_count = static_cast<std::size_t>(lanes);
  const std::size_t engines_needed = (count + lane_count - 1) / lane_count;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs), engines_needed);
  std::atomic<std::size_t> next{0};
  const std::uint32_t sweep_id =
      sched != nullptr ? sched->begin_sweep(count, static_cast<int>(workers))
                       : 0;
  const double submit_us = sched != nullptr ? sched->now_us() : 0.0;
  std::vector<double> start_us(sched != nullptr ? count : 0, 0.0);

  // Live telemetry (opt-in, sampled): lanes interleave, so each point's
  // duration is tracked engine-locally from admit to retire and fed to the
  // bus on completion; the per-window heartbeat reports lane occupancy and
  // proves the drive loop is advancing.
  obs::LiveBus* bus = obs::live_bus();
  if (bus != nullptr && count > 0) bus->add_points(count);
  const auto live_now_ns = []() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  std::vector<std::uint64_t> live_start_ns(bus != nullptr ? count : 0, 0);

  obs::flight::emit(obs::flight::EventKind::kSweepBegin, count, workers);
  const auto drive = [&](std::size_t w) {
    BatchedMachine engine(lanes);
    // Flight heartbeats are throttled by window count: one ring event per
    // 16 advance_window calls keeps the drive loop's liveness visible in
    // a dump without paying a clock read per window.
    std::uint64_t windows = 0;
    for (;;) {
      while (engine.has_free_lane()) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) break;
        if (sched != nullptr) start_us[i] = sched->now_us();
        if (bus != nullptr) {
          live_start_ns[i] = live_now_ns();
          bus->begin_point(static_cast<std::uint32_t>(w), i);
        }
        obs::flight::emit(obs::flight::EventKind::kPointBegin, i, w);
        engine.admit(i, points[i], registries[i].get(),
                     record_stores[i].get(), timeline_stores[i].get());
      }
      if (engine.active_lanes() == 0) break;
      engine.advance_window();
      if (bus != nullptr)
        bus->heartbeat(static_cast<std::uint32_t>(w),
                       static_cast<std::uint32_t>(engine.active_lanes()));
      if ((++windows & 15) == 0)
        obs::flight::emit(obs::flight::EventKind::kHeartbeat,
                          static_cast<std::uint64_t>(engine.active_lanes()),
                          w);
      for (auto& [idx, res] : engine.take_finished()) {
        results[idx] = std::move(res);
        if (sched != nullptr)
          sched->add_span(obs::SweepJobSpan{
              sweep_id, static_cast<std::uint32_t>(idx),
              static_cast<std::uint32_t>(w), submit_us, start_us[idx],
              sched->now_us()});
        std::uint64_t duration_ns = 0;
        if (bus != nullptr) {
          const std::uint64_t now = live_now_ns();
          duration_ns =
              now > live_start_ns[idx] ? now - live_start_ns[idx] : 0;
          bus->complete_point(static_cast<std::uint32_t>(w), idx,
                              duration_ns);
        }
        obs::flight::emit(obs::flight::EventKind::kPointEnd, idx,
                          duration_ns);
        progress.tick();
      }
    }
    // Drained: clear the running-point marker and lane occupancy so the
    // watchdog stops counting this worker as holding work.
    if (bus != nullptr) bus->idle(static_cast<std::uint32_t>(w));
    obs::flight::emit(obs::flight::EventKind::kWorkerIdle, w);
  };
  if (workers <= 1) {
    drive(0);
  } else {
    std::vector<sthreads::Thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      pool.emplace_back([&drive, w]() { drive(w); });
    // Thread destructors join.
  }
  obs::flight::emit(obs::flight::EventKind::kSweepEnd, count);

  obs::CounterRegistry& mine = obs::default_registry();
  for (const auto& r : registries) mine.merge_from(*r);
  for (const auto& r : record_stores)
    if (r != nullptr) parent_records->merge_from(*r);
  for (const auto& t : timeline_stores)
    if (t != nullptr) parent_timeline->merge_from(*t);
  return results;
}

}  // namespace tc3i::mta
