#include "mta/sync_memory.hpp"

#include "core/contracts.hpp"

namespace tc3i::mta {

SyncMemory::SyncMemory(std::size_t size) : SyncMemory(size, Arena{}) {}

SyncMemory::SyncMemory(std::size_t size, Arena&& arena) {
  TC3I_EXPECTS(size > 0);
  if (arena.cells.size() == size) {
    // Adopt the released array and advance the generation: every cell whose
    // epoch now lags reads as {0, EMPTY}. On wrap-around the stamps become
    // ambiguous, so fall back to a hard clear (once every 2^32 recycles).
    words_ = std::move(arena.cells);
    epoch_ = arena.epoch + 1;
    if (epoch_ == 0) words_.assign(size, Cell{});
  } else {
    words_.resize(size);
  }
  obs::CounterRegistry& reg = obs::default_registry();
  c_ops_ = &reg.counter("mta.syncmem.ops");
  c_retries_ = &reg.counter("mta.syncmem.failed_attempts");
  c_handoffs_ = &reg.counter("mta.syncmem.handoffs");
}

SyncMemory::Arena SyncMemory::release_arena() && {
  Arena arena;
  arena.cells = std::move(words_);
  arena.epoch = epoch_;
  return arena;
}

SyncMemory::Cell& SyncMemory::cell(Address addr) {
  TC3I_EXPECTS(addr < words_.size());
  Cell& c = words_[addr];
  if (c.epoch != epoch_) {
    c.value = 0;
    c.full = false;
    c.epoch = epoch_;
  }
  return c;
}

Word SyncMemory::load(Address addr) const {
  TC3I_EXPECTS(addr < words_.size());
  const Cell& c = words_[addr];
  return c.epoch == epoch_ ? c.value : 0;
}

void SyncMemory::store(Address addr, Word value) { cell(addr).value = value; }

void SyncMemory::store_full(Address addr, Word value) {
  Cell& c = cell(addr);
  c.value = value;
  c.full = true;
  cascade(addr);
}

void SyncMemory::reset_empty(Address addr) {
  Cell& c = cell(addr);
  const auto lw = load_waiters_.find(addr);
  const auto sw = store_waiters_.find(addr);
  TC3I_EXPECTS((lw == load_waiters_.end() || lw->second.empty()) &&
               (sw == store_waiters_.end() || sw->second.empty()));
  c.full = false;
}

bool SyncMemory::is_full(Address addr) const {
  TC3I_EXPECTS(addr < words_.size());
  const Cell& c = words_[addr];
  return c.epoch == epoch_ && c.full;
}

SyncAttempt SyncMemory::try_sync_load(Address addr, StreamId stream) {
  Cell& c = cell(addr);
  ++sync_ops_;
  if (c.full) {
    const Word v = c.value;
    c.full = false;
    cascade(addr);
    return SyncAttempt{true, v};
  }
  load_waiters_[addr].push_back(stream);
  ++blocked_count_;
  ++failed_attempts_;
  return SyncAttempt{false, 0};
}

SyncAttempt SyncMemory::try_sync_store(Address addr, Word value,
                                       StreamId stream) {
  Cell& c = cell(addr);
  ++sync_ops_;
  if (!c.full) {
    c.value = value;
    c.full = true;
    cascade(addr);
    return SyncAttempt{true, value};
  }
  store_waiters_[addr].emplace_back(stream, value);
  ++blocked_count_;
  ++failed_attempts_;
  return SyncAttempt{false, 0};
}

void SyncMemory::cascade(Address addr) {
  Cell& c = cell(addr);
  // Alternate hand-offs until no queued operation can proceed. Each queued
  // stream satisfied here is reported through drain_handoffs().
  for (;;) {
    if (c.full) {
      const auto it = load_waiters_.find(addr);
      if (it == load_waiters_.end() || it->second.empty()) return;
      const StreamId s = it->second.front();
      it->second.pop_front();
      --blocked_count_;
      const Word v = c.value;
      c.full = false;
      ++handoffs_total_;
      pending_handoffs_.push_back(Handoff{s, v, true, addr});
    } else {
      const auto it = store_waiters_.find(addr);
      if (it == store_waiters_.end() || it->second.empty()) return;
      const auto [s, v] = it->second.front();
      it->second.pop_front();
      --blocked_count_;
      c.value = v;
      c.full = true;
      ++handoffs_total_;
      pending_handoffs_.push_back(Handoff{s, 0, false, addr});
    }
  }
}

void SyncMemory::flush_counters() {
  c_ops_->add(sync_ops_ - flushed_ops_);
  c_retries_->add(failed_attempts_ - flushed_failed_);
  c_handoffs_->add(handoffs_total_ - flushed_handoffs_);
  flushed_ops_ = sync_ops_;
  flushed_failed_ = failed_attempts_;
  flushed_handoffs_ = handoffs_total_;
}

std::vector<SyncMemory::Handoff> SyncMemory::drain_handoffs() {
  std::vector<Handoff> out;
  out.swap(pending_handoffs_);
  return out;
}

}  // namespace tc3i::mta
