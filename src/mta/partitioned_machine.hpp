// Intra-run parallel execution of one mta::Machine simulation across K host
// worker threads (--run-threads), bit-exact with the scalar path.
//
// Conservative-window partitioning: processors (with their stream slots,
// ready FIFOs, and parked streams) are split into K contiguous partitions,
// each owning a private timing wheel. The coordinator alternates between
//
//   - serial cycles, run one at a time on the coordinator thread in exactly
//     the scalar loop's shape (drain wakes, scan processors in id order,
//     issue through Machine::issue) whenever a *hazard* instruction — a
//     full/empty sync op, a spawn, or a quit — may issue; every mutation of
//     cross-partition state (sync memory hand-offs, stream activation, the
//     registry, stream completion) therefore happens in exact scalar order;
//
//   - parallel windows [B, E): when no stream can reach its next hazard
//     before cycle E, all K partitions advance independently over the
//     window, issuing only Compute/Load/Store. Loads and stores are not
//     serviced inline (the network is a shared serial queue): each is
//     buffered as a deferred request and the stream parks immediately
//     (census reason kMemory — valid because eligibility requires
//     memory_latency >= issue_spacing, so the wake is always past the
//     spacing window). At the window barrier the coordinator merges the
//     per-partition buffers in (cycle, processor) order — exactly the
//     scalar issue order — and replays them through the real network
//     model, pushing wakes into the owners' wheels. Service completes no
//     earlier than cycle + 1 + memory_latency >= E, so no wake is late.
//
// The window bound comes from a per-stream *hazard lower bound* h = wake +
// n * issue_spacing, where n is the number of non-hazard issues left before
// the stream's next hazard (read from a per-VectorProgram suffix array;
// next() is a pure cursor advance, so prefetching is safe — callback
// programs get n = 0 and simply never issue inside windows). h never
// decreases as a stream advances, so a lazily-validated min-heap over all
// live streams yields hmin, and E = min(B + memory_latency + 1, hmin)
// guarantees windows contain no hazard issues.
//
// Determinism: per-processor ready FIFOs see the same (wake, stream) drain
// order as the scalar wheel (a processor's streams all live in one
// partition), per-cycle issue decisions depend only on that FIFO, and every
// shared-state mutation happens on the coordinator in scalar order — so
// cycles, counters, slot accounts, and RunRecords are bit-identical to
// run() for every K. Runs that are ineligible (slow reference, lookahead,
// trace sink, timeline sampling, per-bucket timelines, critical-path
// capture, or K < 2 after clamping to num_processors) fall back to the
// scalar run() unchanged.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mta/machine.hpp"

namespace tc3i::mta {

class PartitionedMachine {
 public:
  /// Binds to a machine whose streams are already added and which has not
  /// begun running. `threads` is clamped to num_processors.
  PartitionedMachine(Machine& machine, int threads);
  ~PartitionedMachine();
  PartitionedMachine(const PartitionedMachine&) = delete;
  PartitionedMachine& operator=(const PartitionedMachine&) = delete;

  /// True when the machine can run under the partitioned scheduler:
  /// threads >= 2 after clamping, fast path (no slow reference), lookahead
  /// 0, memory_latency >= issue_spacing (the deferred-service census rule),
  /// and no per-instruction observers (trace sink, timeline sampling,
  /// utilization buckets, critical-path capture) — those pin scalar, like
  /// --jobs does.
  [[nodiscard]] static bool eligible(const Machine& machine, int threads);

  /// Runs the bound machine to completion (begin_run + partitioned loop +
  /// finish_run). Call exactly once.
  MtaRunResult run(std::uint64_t max_cycles = (1ull << 62));

 private:
  /// Machine::push_wake / Machine::park_sync route here while part_ is set.
  friend class Machine;

  /// A Load/Store issued inside a window, awaiting network service at the
  /// barrier. Buffers fill in (cycle, proc) order within each partition.
  struct DeferredMem {
    std::uint64_t cycle;
    int proc;
    StreamId sid;
    Address addr;
    Word value;
    bool is_store;
  };

  /// One partition: a contiguous processor range, its private wake wheel,
  /// and the window-scratch state its worker thread owns. Cache-line
  /// aligned so workers do not false-share.
  struct alignas(64) Part {
    sim::TimerWheel<StreamId> wheel;
    std::size_t proc_lo = 0;
    std::size_t proc_hi = 0;
    std::uint64_t ready = 0;  ///< streams in this partition's ready FIFOs
    std::vector<DeferredMem> deferred;
    std::uint64_t d_compute = 0;  ///< compute issues this window
    std::uint64_t d_memory = 0;   ///< memory issues this window
  };

  struct HazardEntry {
    std::uint64_t h;
    StreamId sid;
    bool operator>(const HazardEntry& o) const {
      return h != o.h ? h > o.h : sid > o.sid;
    }
  };

  static constexpr std::uint64_t kInf = ~0ull;

  // Hazard bookkeeping (coordinator-owned heap, owner-written h_cur_).
  void register_stream(StreamId sid);
  [[nodiscard]] const std::uint64_t* suffix_for(VectorProgram* vec);
  [[nodiscard]] std::uint64_t bound_at(std::uint64_t wake,
                                       std::uint64_t n) const;
  std::uint64_t refresh_bound(StreamId sid, std::uint64_t wake);
  std::uint64_t next_hazard_bound(std::uint64_t horizon);

  // Wake routing (Machine::push_wake / park_sync land here).
  void route_wake(std::uint64_t at, StreamId sid);
  void note_sync_park(StreamId sid);

  // Scheduler loop.
  void redistribute();
  [[nodiscard]] std::uint64_t global_next_due() const;
  [[nodiscard]] bool any_partition_ready() const;
  void make_ready_local(Part& part, StreamId sid);
  void window_issue(Part& part, StreamId sid, std::uint64_t now);
  void run_window(Part& part, std::uint64_t begin, std::uint64_t end);
  void dispatch_window(std::uint64_t begin, std::uint64_t end);
  void replay_deferred();
  void serial_cycle(std::uint64_t& now);
  void main_loop();
  void publish_rollups();

  // Worker pool (generation-barrier hand-off; all shared window parameters
  // cross through mu_, so the engine is clean under TSan).
  void start_workers();
  void stop_workers();
  void worker_loop(std::size_t part_index);

  Machine& m_;
  int nparts_ = 1;
  std::uint64_t spacing_ = 0;  ///< issue_spacing_cycles
  std::uint64_t wmax_ = 0;     ///< memory_latency_cycles + 1
  std::uint64_t ncap_ = 0;     ///< n above which n * spacing_ saturates
  std::vector<Part> parts_;
  std::vector<int> part_of_proc_;  ///< processor id -> partition index

  /// Per-stream hazard state, indexed by StreamId; h and n are always
  /// read/written together on the window hot path, so they share a
  /// struct (one cache line per issue instead of two).
  ///
  /// `h` is written by the owning partition's thread during windows and
  /// by the coordinator at serial cycles / barriers; the heap is
  /// coordinator-only and lazily revalidated against `h` on pop.
  ///
  /// `n` caches the count of non-hazard issues left before the stream's
  /// next hazard: recomputed exactly (from the program's suffix array) at
  /// serial-cycle wakes, then only decremented per window issue — the
  /// window hot path never touches the VectorProgram. Saturating, so it
  /// can undercount but never overcount; h stays a valid lower bound.
  struct HazardState {
    std::uint64_t h = kInf;
    std::uint64_t n = 0;
  };
  std::vector<HazardState> hs_;
  std::vector<const std::uint64_t*> suffix_;
  std::priority_queue<HazardEntry, std::vector<HazardEntry>,
                      std::greater<>>
      hazard_heap_;
  /// Non-hazard-run suffix sums per VectorProgram (values saturate;
  /// node-stable map so workers can read concurrently with inserts never
  /// happening mid-window).
  std::unordered_map<const VectorProgram*, std::vector<std::uint64_t>>
      suffix_cache_;

  // Worker pool state.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int pending_workers_ = 0;
  std::uint64_t win_begin_ = 0;
  std::uint64_t win_end_ = 0;
  bool shutdown_ = false;

  // Stats for the mta.partition.* counters and flight events.
  std::uint64_t windows_ = 0;
  std::uint64_t serial_scans_ = 0;
};

/// Runs `machine` to completion on `threads` host workers when eligible,
/// falling back to the bit-identical scalar machine.run(max_cycles)
/// otherwise (threads <= 1, slow reference, lookahead, latency <
/// spacing, or any per-instruction observer attached).
MtaRunResult run_partitioned(Machine& machine, int threads,
                             std::uint64_t max_cycles = (1ull << 62));

}  // namespace tc3i::mta
