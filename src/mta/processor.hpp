// Per-processor state of the MTA machine simulator: the pool of hardware
// stream slots and the ready queue from which one instruction is issued per
// clock cycle.
#pragma once

#include <cstdint>
#include <deque>

#include "core/contracts.hpp"
#include "mta/sync_memory.hpp"

namespace tc3i::mta {

class Processor {
 public:
  Processor(int id, int hw_stream_slots)
      : id_(id), slots_(hw_stream_slots) {
    TC3I_EXPECTS(hw_stream_slots > 0);
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int hw_slots() const { return slots_; }
  [[nodiscard]] int live_streams() const { return live_; }
  [[nodiscard]] bool has_free_slot() const { return live_ < slots_; }
  [[nodiscard]] bool has_ready() const { return !ready_.empty(); }
  [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
  [[nodiscard]] std::uint64_t issues() const { return issues_; }

  /// A stream occupies a hardware slot from activation until it quits.
  void occupy_slot() {
    TC3I_EXPECTS(has_free_slot());
    ++live_;
  }
  void release_slot() {
    TC3I_EXPECTS(live_ > 0);
    --live_;
  }

  void make_ready(StreamId stream) { ready_.push_back(stream); }

  /// Pops the next stream to issue from (FIFO arbitration, which matches
  /// the MTA's fair selection among ready streams closely enough for
  /// throughput behaviour).
  StreamId pop_ready() {
    TC3I_EXPECTS(!ready_.empty());
    const StreamId s = ready_.front();
    ready_.pop_front();
    ++issues_;
    return s;
  }

 private:
  int id_;
  int slots_;
  int live_ = 0;
  std::uint64_t issues_ = 0;
  std::deque<StreamId> ready_;
};

}  // namespace tc3i::mta
