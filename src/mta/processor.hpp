// Per-processor state of the MTA machine simulator: the pool of hardware
// stream slots and the ready queue from which one instruction is issued per
// clock cycle.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"
#include "mta/sync_memory.hpp"

namespace tc3i::mta {

class Processor {
 public:
  Processor(int id, int hw_stream_slots)
      : id_(id), slots_(hw_stream_slots) {
    TC3I_EXPECTS(hw_stream_slots > 0);
    // Ready-queue ring: a stream occupies at most one entry and at most
    // `slots_` streams are live, so slots_ + 1 rounded up to a power of
    // two can never overflow.
    ring_.resize(std::bit_ceil(static_cast<std::size_t>(slots_) + 1));
    ring_mask_ = static_cast<std::uint32_t>(ring_.size() - 1);
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int hw_slots() const { return slots_; }
  [[nodiscard]] int live_streams() const { return live_; }
  [[nodiscard]] bool has_free_slot() const { return live_ < slots_; }
  [[nodiscard]] bool has_ready() const { return head_ != tail_; }
  [[nodiscard]] std::size_t ready_count() const { return tail_ - head_; }
  [[nodiscard]] std::uint64_t issues() const { return issues_; }

  /// A stream occupies a hardware slot from activation until it quits.
  void occupy_slot() {
    TC3I_EXPECTS(has_free_slot());
    ++live_;
  }
  void release_slot() {
    TC3I_EXPECTS(live_ > 0);
    --live_;
  }

  void make_ready(StreamId stream) { ring_[tail_++ & ring_mask_] = stream; }

  /// Pops the next stream to issue from (FIFO arbitration, which matches
  /// the MTA's fair selection among ready streams closely enough for
  /// throughput behaviour).
  StreamId pop_ready() {
    TC3I_EXPECTS(has_ready());
    ++issues_;
    return ring_[head_++ & ring_mask_];
  }

  [[nodiscard]] StreamId front_ready() const {
    TC3I_EXPECTS(has_ready());
    return ring_[head_ & ring_mask_];
  }

  /// Credits issue slots retired analytically (the machine's compute-run
  /// fast-forward path, which bypasses pop_ready's per-issue increment).
  void add_issues(std::uint64_t n) { issues_ += n; }

 private:
  int id_;
  int slots_;
  int live_ = 0;
  std::uint64_t issues_ = 0;
  std::vector<StreamId> ring_;  ///< FIFO ready queue (power-of-two ring)
  std::uint32_t ring_mask_ = 0;
  std::uint32_t head_ = 0;  ///< indices wrap modulo ring size; head <= tail
  std::uint32_t tail_ = 0;
};

}  // namespace tc3i::mta
