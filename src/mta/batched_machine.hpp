// Batched lockstep sweep engine: N independent MTA runs per thread.
//
// A sweep evaluates many independent (config x workload) points; the scalar
// path pays a full machine construction per point — dominated by allocating
// and faulting in the sync-memory word array (16 MiB at the default
// memory_words) — and retires points one at a time per host thread.
// BatchedMachine instead keeps N runs ("lanes") in flight at once,
// advancing each lane through the *identical* fast-path simulation loop in
// fixed-size windows of its own clock (structure-of-arrays over the hot
// per-lane state: current cycle, point index, live flag). Lanes that finish
// early retire immediately and are backfilled from the pending sweep queue,
// and a retired lane's sync-memory arena is recycled into the next
// same-sized lane in O(1) (see SyncMemory::Arena) — the batched engine's
// dominant win.
//
// Bit-exactness: a lane executes Machine::begin_run / advance_until /
// finish_run — the same code Machine::run is composed of — so per-lane
// counters, issue-slot accounts, and RunRecords are bit-identical with the
// scalar fast path (the invariant tests/mta_golden_test extends to lanes).
// Each lane's machine is constructed under its point's own CounterRegistry
// / RunRecordStore / TimelineStore scopes and the stores are merged in
// submission order, exactly the run_sweep --jobs contract, so report output
// is byte-identical at any --lanes x --jobs combination.
//
// Refusal rules (run_batched_sweep falls back to the scalar path): a trace
// sink is installed (--trace-out), a critical-path store is installed
// (--critpath), or any point demands the slow reference loop
// (slow_reference config / TC3I_SLOW_SIM) — the same conditions that pin
// --jobs today.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mta/machine.hpp"

namespace tc3i::obs {
class RunRecordStore;
class TimelineStore;
}  // namespace tc3i::obs

namespace tc3i::mta {

/// One sweep point: a machine configuration plus the workload builder that
/// populates it. `scenario` labels the point's RunRecords
/// (obs::ScopedScenarioLabel semantics).
struct BatchPoint {
  MtaConfig config;
  std::string scenario;
  std::function<void(Machine&, ProgramPool&)> build;
};

class BatchedMachine {
 public:
  /// Default lockstep window: how many cycles of its own clock each active
  /// lane advances per advance_window() pass. Large enough to amortize the
  /// per-lane dispatch, small enough that a short run retires (and its lane
  /// backfills) promptly.
  static constexpr std::uint64_t kDefaultWindowCycles = 4096;

  explicit BatchedMachine(int lanes,
                          std::uint64_t window_cycles = kDefaultWindowCycles);
  BatchedMachine(const BatchedMachine&) = delete;
  BatchedMachine& operator=(const BatchedMachine&) = delete;
  /// Drains the engine's arena pool into the process-wide cache (below).
  ~BatchedMachine();

  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] int active_lanes() const { return active_count_; }
  [[nodiscard]] bool has_free_lane() const { return active_count_ < lanes_; }

  /// Admits point `index` into a free lane: constructs the lane's machine
  /// (recycling a matching sync-memory arena when one is pooled), builds
  /// the workload, and begins the run. The machine and its workload are
  /// constructed under the given per-point scopes (any may be null), so
  /// counters, records, and timelines land in the point's own stores.
  void admit(std::size_t index, const BatchPoint& point,
             obs::CounterRegistry* registry, obs::RunRecordStore* records,
             obs::TimelineStore* timeline);

  /// Advances every active lane by one window of its own clock. Lanes that
  /// complete retire: their results queue for take_finished() and their
  /// arenas join the recycle pool.
  void advance_window();

  /// Returns (point index, result) for every lane retired since the last
  /// call, in retirement order.
  std::vector<std::pair<std::size_t, MtaRunResult>> take_finished();

  /// Internal effectiveness tallies (not published as counters: the engine
  /// must add zero always-on metrics or batched output would not be
  /// byte-identical to scalar).
  struct Stats {
    std::uint64_t points_admitted = 0;
    std::uint64_t windows = 0;
    std::uint64_t lane_advances = 0;
    std::uint64_t arena_reuses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Lane {
    std::unique_ptr<Machine> machine;
    std::unique_ptr<ProgramPool> pool;
    std::string scenario;
    std::size_t point_index = 0;
  };

  void retire(int lane);

  int lanes_;
  std::uint64_t window_;
  int active_count_ = 0;
  // Hot per-lane state, scanned every window (SoA so the scan touches a
  // few contiguous words per lane, not the cold Lane structs).
  std::vector<std::uint64_t> lane_now_;
  std::vector<std::uint8_t> lane_active_;
  std::vector<Lane> cold_;
  // Released sync-memory arenas keyed by linear search on size (lane
  // counts are small); bounded by lanes_, the steady-state need. Cold
  // misses fall back to the process-wide cache: an engine's lanes all
  // start cold, and — unlike the scalar loop, whose freed array is
  // immediately recycled by the allocator — N live arenas force N fresh
  // 16 MiB mappings whose page-in cost dwarfs the simulation. Seeding
  // from arenas banked by earlier engines (the destructor drains this
  // pool back) makes every sweep after the first fully warm.
  std::vector<SyncMemory::Arena> arenas_;
  std::vector<std::pair<std::size_t, MtaRunResult>> finished_;
  Stats stats_;
};

/// Runs `points` through the batched engine and returns the results in
/// submission order. `lanes` is the in-flight run count per worker thread,
/// `jobs` the worker-thread count (the run_sweep meaning; both composable).
/// Per-point counter/record/timeline isolation with submission-order merge
/// makes the output byte-identical to the scalar path at any lanes x jobs.
/// Falls back to scalar sim::run_sweep when lanes <= 1, when a trace sink
/// or critical-path store is installed, or when any point demands the slow
/// reference loop.
std::vector<MtaRunResult> run_batched_sweep(const std::vector<BatchPoint>& points,
                                            int lanes, int jobs);

}  // namespace tc3i::mta
