// Abstract instruction streams executed by the MTA simulator.
//
// A StreamProgram is a generator of abstract instructions. The simulator
// does not interpret real Tera assembly; it models the *costs and
// synchronization behaviour* of instruction streams, which is what the
// paper's results depend on: issue-slot pressure, memory latency masking,
// full/empty-bit blocking, and thread creation overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mta/sync_memory.hpp"

namespace tc3i::mta {

class StreamProgram;

// Region annotations -------------------------------------------------------
//
// Workload builders tag each StreamProgram with a region — a named phase of
// the benchmark ("correlate", "masking_row", ...) — and the machine rolls
// issued instructions and stream lifetimes up per region (RunRecord's
// `regions` section). Region ids are process-global, get-or-create, and
// id 0 is always "main". Names must use the counter-name charset
// [a-z0-9_.].

/// Returns the id for `name`, interning it on first use.
[[nodiscard]] int region_id(std::string_view name);

/// The name behind an id previously returned by region_id().
[[nodiscard]] const std::string& region_name(int id);

/// Number of interned regions (ids are [0, region_count())).
[[nodiscard]] int region_count();

struct Instr {
  enum class Op : std::uint8_t {
    Compute,    ///< `count` back-to-back ALU instructions
    Load,       ///< unsynchronized memory read
    Store,      ///< unsynchronized memory write
    SyncLoad,   ///< full/empty synchronized read (blocks until FULL)
    SyncStore,  ///< full/empty synchronized write (blocks until EMPTY)
    Spawn,      ///< create a new stream running `spawn`
    Quit,       ///< stream terminates
  };

  Op op = Op::Quit;
  std::uint64_t count = 1;        ///< Compute/Load/Store: repeat count
  Address addr = 0;               ///< memory ops
  Word value = 0;                 ///< stores
  StreamProgram* spawn = nullptr; ///< Spawn only (non-owning)
  bool software_spawn = false;    ///< 50-100 cycle software thread creation
};

/// Interface: yields the next instruction, returns false at end of stream
/// (equivalent to an implicit Quit).
class StreamProgram {
 public:
  virtual ~StreamProgram() = default;

  /// Produces the next instruction. Returns false when the stream is done.
  virtual bool next(Instr& out) = 0;

  /// Called with the value delivered by a completed synchronized load,
  /// for programs whose control flow depends on loaded data.
  virtual void deliver(Word /*value*/) {}

  /// Non-null when this program is a VectorProgram. The simulator's issue
  /// loop fetches through the concrete type (a direct, inlinable call)
  /// when it can — trace replay is the dominant workload.
  [[nodiscard]] virtual class VectorProgram* as_vector() { return nullptr; }

  /// The region this stream's work is attributed to (default 0, "main").
  [[nodiscard]] int region() const { return region_; }
  void set_region(int id) { region_ = id; }

 private:
  int region_ = 0;
};

/// A fixed pre-built instruction sequence (the workhorse for trace replay).
class VectorProgram final : public StreamProgram {
 public:
  VectorProgram() = default;
  explicit VectorProgram(std::vector<Instr> instrs)
      : instrs_(std::move(instrs)) {}

  // Builder interface -------------------------------------------------------
  void compute(std::uint64_t n);
  void load(Address addr, std::uint64_t n = 1);
  void store(Address addr, Word value = 0, std::uint64_t n = 1);
  void sync_load(Address addr);
  void sync_store(Address addr, Word value = 0);
  void spawn(StreamProgram* program, bool software = false);

  [[nodiscard]] std::size_t instruction_entries() const {
    return instrs_.size();
  }
  [[nodiscard]] std::uint64_t total_instructions() const;

  bool next(Instr& out) override {
    if (pos_ >= instrs_.size()) return false;
    out = instrs_[pos_++];
    return true;
  }
  [[nodiscard]] VectorProgram* as_vector() override { return this; }

  /// The full instruction sequence and the fetch cursor (index of the next
  /// entry next() returns). next() is a pure cursor advance, so the
  /// partitioned scheduler may prefetch and inspect the remaining program
  /// to bound when the stream can next issue a serializing instruction.
  [[nodiscard]] const std::vector<Instr>& instructions() const {
    return instrs_;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::vector<Instr> instrs_;
  std::size_t pos_ = 0;
};

/// A program defined by a callback (used by tests and by programs whose
/// behaviour depends on synchronized loads, e.g. fetch-and-add loops).
class CallbackProgram final : public StreamProgram {
 public:
  using NextFn = std::function<bool(Instr&)>;
  using DeliverFn = std::function<void(Word)>;

  explicit CallbackProgram(NextFn next_fn, DeliverFn deliver_fn = nullptr)
      : next_fn_(std::move(next_fn)), deliver_fn_(std::move(deliver_fn)) {}

  bool next(Instr& out) override { return next_fn_(out); }
  void deliver(Word value) override {
    if (deliver_fn_) deliver_fn_(value);
  }

 private:
  NextFn next_fn_;
  DeliverFn deliver_fn_;
};

/// Owns a set of programs with stable addresses (spawn targets must outlive
/// the machine run).
class ProgramPool {
 public:
  VectorProgram* make_vector();
  CallbackProgram* make_callback(CallbackProgram::NextFn next_fn,
                                 CallbackProgram::DeliverFn deliver_fn = nullptr);

  [[nodiscard]] std::size_t size() const { return programs_.size(); }

 private:
  std::vector<std::unique_ptr<StreamProgram>> programs_;
};

}  // namespace tc3i::mta
