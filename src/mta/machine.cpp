#include "mta/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "obs/trace_sink.hpp"

namespace tc3i::mta {

namespace {

bool slow_sim_env() {
  const char* env = std::getenv("TC3I_SLOW_SIM");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

bool slow_sim_forced() { return slow_sim_env(); }

std::string MtaConfig::validate() const {
  std::ostringstream os;
  if (num_processors < 1) os << "num_processors < 1; ";
  if (clock_hz <= 0.0) os << "clock_hz <= 0; ";
  if (streams_per_processor < 1) os << "streams_per_processor < 1; ";
  if (issue_spacing_cycles < 1) os << "issue_spacing_cycles < 1; ";
  if (memory_latency_cycles < 1) os << "memory_latency_cycles < 1; ";
  if (network_ops_per_cycle <= 0.0) os << "network_ops_per_cycle <= 0; ";
  if (hw_spawn_cycles < 0) os << "hw_spawn_cycles < 0; ";
  if (sw_spawn_cycles < 0) os << "sw_spawn_cycles < 0; ";
  if (lookahead < 0) os << "lookahead < 0; ";
  if (memory_banks < 0) os << "memory_banks < 0; ";
  if (memory_banks > 0 && bank_busy_cycles < 1)
    os << "bank_busy_cycles < 1 with banks enabled; ";
  if (memory_words == 0) os << "memory_words == 0; ";
  return os.str();
}

Machine::Machine(MtaConfig config)
    : Machine(std::move(config), SyncMemory::Arena{}) {}

Machine::Machine(MtaConfig config, SyncMemory::Arena&& arena)
    : config_(std::move(config)),
      memory_(config_.memory_words, std::move(arena)) {
  const std::string err = config_.validate();
  if (!err.empty())
    contract_failure("MtaConfig", err.c_str(), __FILE__, __LINE__);
  slow_ = config_.slow_reference || slow_sim_env();
  procs_.reserve(static_cast<std::size_t>(config_.num_processors));
  for (int p = 0; p < config_.num_processors; ++p)
    procs_.emplace_back(p, config_.streams_per_processor);
  if (config_.memory_banks > 0)
    bank_free_fp_.resize(static_cast<std::size_t>(config_.memory_banks), 0);
  // Round-to-nearest keeps the fixed-point service interval within 2^-21
  // cycles of 1/rate; the drift over a saturated run is far below one part
  // in 10^6 of the cycle count.
  service_fp_ = static_cast<std::uint64_t>(
      std::llround(std::ldexp(1.0 / config_.network_ops_per_cycle, kFpBits)));
  TC3I_ASSERT(service_fp_ >= 1);
  load_tracker_.init(config_.num_processors, config_.streams_per_processor);
  free_slots_ = config_.num_processors * config_.streams_per_processor;
  acct_.resize(static_cast<std::size_t>(config_.num_processors));

  obs::CounterRegistry& reg = obs::default_registry();
  obs_.issue_total = &reg.counter("mta.issue.total");
  obs_.issue_compute = &reg.counter("mta.issue.compute");
  obs_.issue_memory = &reg.counter("mta.issue.memory");
  obs_.issue_sync = &reg.counter("mta.issue.sync");
  obs_.issue_spawn = &reg.counter("mta.issue.spawn");
  obs_.network_ops = &reg.counter("mta.memory.network_ops");
  obs_.sync_blocks = &reg.counter("mta.sync.blocks");
  obs_.sync_handoffs = &reg.counter("mta.sync.handoffs");
  obs_.spawns_hw = &reg.counter("mta.spawn.hardware");
  obs_.spawns_sw = &reg.counter("mta.spawn.software");
  obs_.spawns_virtualized = &reg.counter("mta.spawn.virtualized");
  obs_.streams_completed = &reg.counter("mta.streams.completed");
  obs_.runs = &reg.counter("mta.runs");
  obs_.slot_used = &reg.counter("mta.slot.used");
  obs_.slot_no_stream = &reg.counter("mta.slot.no_stream");
  obs_.slot_spacing = &reg.counter("mta.slot.spacing");
  obs_.slot_spawn = &reg.counter("mta.slot.spawn");
  obs_.slot_memory = &reg.counter("mta.slot.memory");
  obs_.slot_sync = &reg.counter("mta.slot.sync");
  obs_.peak_live = &reg.gauge("mta.streams.peak_live");
  obs_.run_utilization = &reg.histogram("mta.run.processor_utilization");
  obs_.run_wall_seconds = &reg.histogram("mta.run.wall_seconds");
  obs_.stream_instructions = &reg.histogram("mta.stream.instructions");
  obs_.registry = &reg;
  obs_.sink = obs::global_sink();
  if (obs_.sink != nullptr)
    obs_.pid = obs_.sink->register_track(config_.name);
  obs_.records = obs::active_run_records();
  obs_.timeline = obs::active_timeline();
  if (obs_.timeline != nullptr) {
    sample_period_ = obs_.timeline->sample_period_cycles();
    sample_next_ = sample_period_;
  }
  cap_store_ = obs::active_critpath();
  if (cap_store_ != nullptr && config_.lookahead == 0) {
    cap_graph_ = std::make_unique<obs::DepGraph>();
    cap_graph_->model = "mta";
    cap_graph_->name = config_.name;
    cap_graph_->unit = "cycles";
    cap_graph_->add_node(0.0);  // node 0: machine start
    cap_ = cap_graph_.get();
    cap_spawn_via_ = obs::DepGraph::kNoNode;
  }
}

std::uint32_t Machine::cap_issue_node(StreamId sid, std::uint64_t now,
                                      obs::DepKind kind) {
  CapStream& cs = cap_streams_[static_cast<std::size_t>(sid)];
  const std::uint32_t m =
      cap_->add_node(static_cast<double>(now), cs.region);
  cap_->add_edge(cs.node, obs::DepKind::kCompute, obs::DepKind::kCompute,
                 static_cast<double>(cs.pending) *
                     static_cast<double>(config_.issue_spacing_cycles));
  cs.node = m;
  cs.pending = 0;
  cap_cur_issue_ = m;
  cap_memory_kind_ = kind;
  return m;
}

void Machine::push_wake(std::uint64_t at, StreamId sid, StallReason why) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  s.wait_reason = why;
  ++acct_[static_cast<std::size_t>(s.proc)]
        .waiting[static_cast<std::size_t>(why)];
  if (part_ != nullptr) {
    part_route_wake(at, sid);
    return;
  }
  if (slow_) {
    heap_.push(Wake{at, sid});
  } else {
    if (at < pushed_min_) pushed_min_ = at;
    wheel_.push(at, sid);
  }
}

void Machine::park_sync(StreamId sid) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  s.wait_reason = StallReason::kSync;
  ++acct_[static_cast<std::size_t>(s.proc)]
        .waiting[static_cast<std::size_t>(StallReason::kSync)];
  if (part_ != nullptr) part_note_sync_park(sid);
}

void Machine::runaway_abort(std::uint64_t now) const {
  std::array<std::uint64_t, kNumStallReasons> waiting{};
  for (const ProcAcct& a : acct_)
    for (std::size_t r = 0; r < kNumStallReasons; ++r)
      waiting[r] += a.waiting[r];
  std::fprintf(
      stderr,
      "[mta] runaway guard: cycle %llu reached max_cycles %llu with "
      "%d live streams (%zu virtualized pending); parked by reason: "
      "spacing=%llu spawn=%llu memory=%llu sync=%llu\n",
      (unsigned long long)now, (unsigned long long)max_cycles_, live_streams_,
      pending_.size(),
      (unsigned long long)waiting[static_cast<std::size_t>(
          StallReason::kSpacing)],
      (unsigned long long)waiting[static_cast<std::size_t>(
          StallReason::kSpawn)],
      (unsigned long long)waiting[static_cast<std::size_t>(
          StallReason::kMemory)],
      (unsigned long long)waiting[static_cast<std::size_t>(
          StallReason::kSync)]);
  contract_failure("Machine::run", "now < max_cycles", __FILE__, __LINE__);
}

void Machine::make_stream_ready(StreamId sid) {
  const Stream& s = streams_[static_cast<std::size_t>(sid)];
  --acct_[static_cast<std::size_t>(s.proc)]
        .waiting[static_cast<std::size_t>(s.wait_reason)];
  procs_[static_cast<std::size_t>(s.proc)].make_ready(sid);
  ++ready_count_;
}

void Machine::account_idle(int proc, std::uint64_t n) {
  ProcAcct& a = acct_[static_cast<std::size_t>(proc)];
  if (procs_[static_cast<std::size_t>(proc)].live_streams() == 0) {
    a.acct.no_stream += n;
    return;
  }
  // Every live stream on an idle processor is parked; name the slot after
  // the highest-priority reason present.
  if (a.waiting[static_cast<std::size_t>(StallReason::kSync)] > 0)
    a.acct.sync += n;
  else if (a.waiting[static_cast<std::size_t>(StallReason::kMemory)] > 0)
    a.acct.memory += n;
  else if (a.waiting[static_cast<std::size_t>(StallReason::kSpawn)] > 0)
    a.acct.spawn += n;
  else
    a.acct.spacing += n;
}

void Machine::account_solo_idle(int proc, std::uint64_t n, StallReason solo) {
  if (n == 0) return;
  ProcAcct& a = acct_[static_cast<std::size_t>(proc)];
  if (a.waiting[static_cast<std::size_t>(StallReason::kSync)] > 0)
    a.acct.sync += n;
  else if (a.waiting[static_cast<std::size_t>(StallReason::kMemory)] > 0 ||
           solo == StallReason::kMemory)
    a.acct.memory += n;
  else if (a.waiting[static_cast<std::size_t>(StallReason::kSpawn)] > 0)
    a.acct.spawn += n;
  else
    a.acct.spacing += n;
}

void Machine::add_stream(StreamProgram* program) {
  TC3I_EXPECTS(program != nullptr);
  TC3I_EXPECTS(!ran_);
  // Initial streams that exceed hardware slots are virtualized like
  // runtime spawns: they wait for a slot.
  if (free_slots_ == 0) {
    obs_.spawns_virtualized->add();
    // Blocking on the hardware stream resource is a synchronization wait:
    // the spawn parks until a running stream quits and frees its slot.
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "stream_virtualized", 0.0,
                         obs_.pid, static_cast<std::uint64_t>(pending_.size()));
    pending_.push(PendingSpawn{program, false});
    return;
  }
  if (cap_ != nullptr) {
    // Initial streams descend from the machine-start node.
    cap_spawn_parent_ = 0;
    cap_spawn_via_ = obs::DepGraph::kNoNode;
  }
  activate(program, /*software=*/false, /*now=*/0);
}

void Machine::activate(StreamProgram* program, bool software,
                       std::uint64_t now) {
  TC3I_ASSERT(free_slots_ > 0);
  const int proc = load_tracker_.least_loaded();
  Processor& p = procs_[static_cast<std::size_t>(proc)];
  TC3I_ASSERT(p.has_free_slot());
  p.occupy_slot();
  load_tracker_.change(proc, +1);
  --free_slots_;

  const auto sid = static_cast<StreamId>(streams_.size());
  Stream s;
  s.program = program;
  s.vec = program->as_vector();
  s.proc = proc;
  s.activated = now;
  streams_.push_back(s);
  ++live_streams_;
  peak_live_ = std::max(peak_live_, static_cast<std::uint64_t>(live_streams_));

  const std::uint64_t spawn_cost = static_cast<std::uint64_t>(
      software ? config_.sw_spawn_cycles : config_.hw_spawn_cycles);
  push_wake(now + spawn_cost, sid, StallReason::kSpawn);

  if (cap_ != nullptr) {
    // Activation node: the child exists spawn_cost after the spawning
    // instruction — and, when the spawn was virtualized, also no earlier
    // than spawn_cost after the quit that freed its hardware slot.
    const std::uint32_t n = cap_->add_node(
        static_cast<double>(now + spawn_cost), program->region());
    cap_->add_edge(cap_spawn_parent_, obs::DepKind::kSpawn,
                   obs::DepKind::kSpawn, static_cast<double>(spawn_cost));
    if (cap_spawn_via_ != obs::DepGraph::kNoNode)
      cap_->add_edge(cap_spawn_via_, obs::DepKind::kSpawn,
                     obs::DepKind::kSpawn, static_cast<double>(spawn_cost));
    cap_streams_.resize(streams_.size());
    cap_streams_[static_cast<std::size_t>(sid)] =
        CapStream{n, 0, program->region()};
  }

  (software ? obs_.spawns_sw : obs_.spawns_hw)->add();
  if (obs_.sink != nullptr) {
    obs_.sink->instant(obs::Category::Spawn,
                       software ? "spawn_sw" : "spawn_hw", ts_us(now),
                       obs_.pid, static_cast<std::uint64_t>(sid));
    obs_.sink->begin(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                     static_cast<std::uint64_t>(sid));
  }
}

std::uint64_t Machine::network_service(std::uint64_t now, Address addr) {
  std::uint64_t start_fp =
      std::max((now + 1) << kFpBits, network_free_fp_);
  if (config_.memory_banks > 0) {
    // Interleaved banks: the op also waits for its bank to free up. The
    // real machine hashed addresses so strided code spreads across banks.
    std::uint64_t key = addr;
    if (config_.hash_addresses) {
      key = SplitMix64(addr ^ 0x9e3779b97f4a7c15ULL).next();
    }
    const auto bank = static_cast<std::size_t>(
        key % static_cast<std::uint64_t>(config_.memory_banks));
    start_fp = std::max(start_fp, bank_free_fp_[bank]);
    bank_free_fp_[bank] =
        start_fp +
        (static_cast<std::uint64_t>(config_.bank_busy_cycles) << kFpBits);
  }
  network_free_fp_ = start_fp + service_fp_;
  ++memory_ops_;
  // ceil(start + memory_latency) in fixed point.
  return (start_fp +
          (static_cast<std::uint64_t>(config_.memory_latency_cycles)
           << kFpBits) +
          (kFpOne - 1)) >>
         kFpBits;
}

void Machine::complete_memory_op(StreamId sid, std::uint64_t now,
                                 Address addr) {
  const std::uint64_t done = network_service(now, addr);
  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);
  const auto lookahead = static_cast<std::size_t>(config_.lookahead);
  if (lookahead == 0) {
    if (cap_ != nullptr) {
      // Wake node: the stream resumes after both the issue-spacing window
      // and the network round trip. The trip splits into the scalable
      // latency (knob: memory_latency) and the fixed queueing remainder;
      // full/empty trips keep sync attribution but still scale with the
      // latency knob (cap_memory_kind_ set at the issuing instruction).
      // Hand-off resumes (sid != the issuing stream) hang off the
      // producer's issue node, plus a zero-weight edge from the waiter's
      // own blocked attempt so projections that shrink the producer chain
      // cannot predict a resume before the waiter even asked.
      const double latency =
          static_cast<double>(config_.memory_latency_cycles);
      CapStream& cs = cap_streams_[static_cast<std::size_t>(sid)];
      const std::uint32_t v = cap_->add_node(
          static_cast<double>(std::max(done, spacing)), cs.region);
      cap_->add_edge(cap_cur_issue_, obs::DepKind::kCompute,
                     obs::DepKind::kCompute,
                     static_cast<double>(config_.issue_spacing_cycles));
      cap_->add_edge(cap_cur_issue_, cap_memory_kind_, obs::DepKind::kMemory,
                     latency, static_cast<double>(done - now) - latency);
      if (cs.node != cap_cur_issue_)
        cap_->add_edge(cs.node, obs::DepKind::kSync, obs::DepKind::kSync,
                       0.0);
      cs.node = v;
      cs.pending = 0;
    }
    // Fully dependent code: the stream waits for this operation. The wait
    // counts as a memory stall only past the issue-spacing window it would
    // have sat out anyway.
    push_wake(std::max(done, spacing), sid,
              done > spacing ? StallReason::kMemory : StallReason::kSpacing);
    return;
  }
  // Explicit-dependence lookahead: the stream keeps issuing while at most
  // `lookahead` memory operations are outstanding; otherwise it waits for
  // the oldest one that must retire first.
  auto& outstanding = streams_[static_cast<std::size_t>(sid)].outstanding;
  while (!outstanding.empty() && outstanding.front() <= now)
    outstanding.pop_front();
  outstanding.push_back(done);
  std::uint64_t wake = spacing;
  if (outstanding.size() > lookahead)
    wake = std::max(wake, outstanding[outstanding.size() - 1 - lookahead]);
  push_wake(wake, sid,
            wake > spacing ? StallReason::kMemory : StallReason::kSpacing);
}

void Machine::process_handoffs(std::uint64_t now) {
  for (const auto& h : memory_.drain_handoffs()) {
    Stream& s = streams_[static_cast<std::size_t>(h.stream)];
    TC3I_ASSERT(!s.dead);
    // The stream stops being sync-parked here; complete_memory_op re-parks
    // it for the network trip the hand-off triggers.
    --acct_[static_cast<std::size_t>(s.proc)]
          .waiting[static_cast<std::size_t>(s.wait_reason)];
    if (h.was_load) s.program->deliver(h.value);
    ++sync_handoffs_;
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "sync_unblock", ts_us(now),
                         obs_.pid, static_cast<std::uint64_t>(h.stream));
    // The queued operation completes now: one more trip through the network.
    complete_memory_op(h.stream, now, h.addr);
  }
}

void Machine::finish_stream(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  s.dead = true;
  --live_streams_;
  ++completed_;
  obs_.streams_completed->add();
  obs_.stream_instructions->record(static_cast<double>(s.issued));
  const auto rid = static_cast<std::size_t>(s.program->region());
  if (rid >= region_tallies_.size()) region_tallies_.resize(rid + 1);
  RegionTally& tally = region_tallies_[rid];
  ++tally.streams;
  tally.instructions += s.issued;
  tally.stream_cycles += now - s.activated;
  if (obs_.sink != nullptr)
    obs_.sink->end(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                   static_cast<std::uint64_t>(sid));
  procs_[static_cast<std::size_t>(s.proc)].release_slot();
  load_tracker_.change(s.proc, -1);
  ++free_slots_;
  if (!pending_.empty()) {
    const PendingSpawn ps = pending_.front();
    pending_.pop();
    if (cap_ != nullptr) {
      cap_spawn_parent_ = ps.cap_parent;
      cap_spawn_via_ = cap_streams_[static_cast<std::size_t>(sid)].node;
    }
    activate(ps.program, ps.software, now);
  }
}

void Machine::issue(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  ++s.issued;
  if (!s.has_cur) fetch_next(s);

  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);

  // The per-processor issue counters already tally every instruction
  // (pop_ready() increments them); instructions_ is derived from their sum
  // at the end of run() to keep this switch store-free beyond its tallies.
  switch (s.cur.op) {
    case Instr::Op::Compute: {
      ++issued_compute_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      if (cap_ != nullptr)
        ++cap_streams_[static_cast<std::size_t>(sid)].pending;
      push_wake(spacing, sid, StallReason::kSpacing);
      break;
    }
    case Instr::Op::Load: {
      ++issued_memory_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      if (cap_ != nullptr) cap_issue_node(sid, now, obs::DepKind::kMemory);
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::Store: {
      ++issued_memory_;
      memory_.store(s.cur.addr, s.cur.value);
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      if (cap_ != nullptr) cap_issue_node(sid, now, obs::DepKind::kMemory);
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::SyncLoad: {
      ++issued_sync_;
      s.has_cur = false;
      if (cap_ != nullptr) cap_issue_node(sid, now, obs::DepKind::kSync);
      const SyncAttempt a = memory_.try_sync_load(s.cur.addr, sid);
      if (a.succeeded) {
        s.program->deliver(a.value);
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        park_sync(sid);
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      // On failure the stream waits in memory (no issue slots consumed).
      process_handoffs(now);
      break;
    }
    case Instr::Op::SyncStore: {
      ++issued_sync_;
      s.has_cur = false;
      if (cap_ != nullptr) cap_issue_node(sid, now, obs::DepKind::kSync);
      const SyncAttempt a = memory_.try_sync_store(s.cur.addr, s.cur.value, sid);
      if (a.succeeded) {
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        park_sync(sid);
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      process_handoffs(now);
      break;
    }
    case Instr::Op::Spawn: {
      ++spawns_;
      ++issued_spawn_;
      StreamProgram* target = s.cur.spawn;
      const bool software = s.cur.software_spawn;
      s.has_cur = false;
      TC3I_ASSERT(target != nullptr);
      if (cap_ != nullptr) {
        cap_spawn_parent_ = cap_issue_node(sid, now, obs::DepKind::kSpawn);
        cap_spawn_via_ = obs::DepGraph::kNoNode;
        // The spawn instruction itself occupies one issue-spacing window.
        cap_streams_[static_cast<std::size_t>(sid)].pending = 1;
      }
      if (free_slots_ > 0) {
        activate(target, software, now);
      } else {
        obs_.spawns_virtualized->add();
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "stream_virtualized",
                             ts_us(now), obs_.pid,
                             static_cast<std::uint64_t>(sid));
        pending_.push(PendingSpawn{target, software, cap_spawn_parent_});
      }
      push_wake(spacing, sid, StallReason::kSpacing);
      break;
    }
    case Instr::Op::Quit: {
      s.has_cur = false;
      // Quit node: flushes the stream's trailing compute run; doubles as
      // the cap_spawn_via_ link when this quit unblocks a pending spawn.
      if (cap_ != nullptr) cap_issue_node(sid, now, obs::DepKind::kCompute);
      finish_stream(sid, now);
      break;
    }
  }
}

std::uint64_t Machine::run_solo(std::uint64_t now, std::uint64_t max_cycles) {
  // Exactly one stream is ready machine-wide and the wheel is drained to
  // `now`, so no other stream can issue before the wheel's next due cycle.
  // Within that window this stream's instructions can be retired without
  // bouncing each one through the wake queue — and entire Compute runs
  // collapse to arithmetic. The wheel is not touched while in here (memory
  // ops complete inline), so `next_due` is loop-invariant.
  Processor* proc = nullptr;
  for (auto& p : procs_)
    if (p.has_ready()) proc = &p;
  TC3I_ASSERT(proc != nullptr);
  Processor& p = *proc;
  const StreamId sid = p.front_ready();
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  const auto spacing =
      static_cast<std::uint64_t>(config_.issue_spacing_cycles);
  const std::uint64_t next_due = wheel_.next_due();  // kNone when empty
  const bool la0 = config_.lookahead == 0;

  // Slot accounting: every processor but p idles the whole span with a
  // census that cannot change in here (no foreign issues, no wake
  // deliveries, no spawns/hand-offs outside the generic exit), so the
  // foreign span is attributed in one shot at exit. p's own gap cycles are
  // credited per instruction run via account_solo_idle, which supplies the
  // reason the solo stream would have been parked with.
  const std::uint64_t entry = now;
  const auto foreign_idle = [&](std::uint64_t upto) {
    if (upto == entry) return;
    for (auto& q : procs_)
      if (q.id() != p.id()) account_idle(q.id(), upto - entry);
  };

  // The first issue consumes the ready-queue entry (counting one issue);
  // later ones are credited analytically.
  bool popped = false;
  const auto charge = [&](std::uint64_t n) {
    if (!popped) {
      (void)p.pop_ready();
      --ready_count_;
      popped = true;
      --n;
    }
    if (n > 0) p.add_issues(n);
  };

  while (true) {
    if (now >= max_cycles) runaway_abort(now);
    if (!s.has_cur) fetch_next(s);

    if (s.cur.op == Instr::Op::Compute) {
      // Issues land at now, now+S, ...; every issue after the first is
      // only sole-ready if it comes strictly before the next foreign wake.
      std::uint64_t k = s.cur.count;
      if (next_due != sim::TimerWheel<StreamId>::kNone)
        k = std::min(k, 1 + (next_due - 1 - now) / spacing);
      charge(k);
      issued_compute_ += k;
      s.issued += k;
      s.cur.count -= k;
      if (s.cur.count == 0) s.has_cur = false;
      const std::uint64_t last = now + (k - 1) * spacing;
      const std::uint64_t wake = last + spacing;
      if (s.cur.count > 0 ||
          (next_due != sim::TimerWheel<StreamId>::kNone && next_due <= wake)) {
        // A foreign wake lands before (or at) our next issue: queue our
        // wake and let the generic loop arbitrate. Covered cycles end at
        // `last`: k issues plus the k-1 spacing gaps between them.
        account_solo_idle(p.id(), (k - 1) * (spacing - 1),
                          StallReason::kSpacing);
        push_wake(wake, sid, StallReason::kSpacing);
        foreign_idle(last + 1);
        return last + 1;
      }
      // Continuing: the trailing spacing gap up to `wake` is covered too.
      account_solo_idle(p.id(), k * (spacing - 1), StallReason::kSpacing);
      now = wake;
      continue;
    }

    if (la0 && (s.cur.op == Instr::Op::Load || s.cur.op == Instr::Op::Store)) {
      charge(1);
      ++issued_memory_;
      ++s.issued;
      if (s.cur.op == Instr::Op::Store) memory_.store(s.cur.addr, s.cur.value);
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      const std::uint64_t done = network_service(now, s.cur.addr);
      const std::uint64_t wake = std::max(done, now + spacing);
      const StallReason why = done > now + spacing ? StallReason::kMemory
                                                   : StallReason::kSpacing;
      if (next_due != sim::TimerWheel<StreamId>::kNone && next_due <= wake) {
        push_wake(wake, sid, why);
        foreign_idle(now + 1);
        return now + 1;
      }
      account_solo_idle(p.id(), wake - now - 1, why);
      now = wake;
      continue;
    }

    // Sync ops, spawns, quits and lookahead>0 memory ops take the generic
    // path for one instruction, then the generic loop resumes (they can
    // wake other streams or change stream structure). issue() can change
    // foreign censuses (spawn placement, hand-offs), so the exit cycle is
    // attributed in the slow loop's processor-scan order: processors before
    // p see the pre-issue census, processors after it the post-issue one.
    foreign_idle(now);
    if (!popped) {
      (void)p.pop_ready();
      --ready_count_;
      popped = true;
    } else {
      p.add_issues(1);
    }
    for (auto& q : procs_)
      if (q.id() < p.id()) account_idle(q.id(), 1);
    issue(sid, now);
    for (auto& q : procs_)
      if (q.id() > p.id()) account_idle(q.id(), 1);
    return now + 1;
  }
}

void Machine::flush_samples(std::uint64_t now) {
  // Everything accumulated since the previous flush happened at scanned
  // cycles strictly before `sample_next_` (any scanned cycle at or past the
  // boundary flushes before accruing), so the deltas belong entirely to the
  // first unflushed bucket; buckets skipped by idle jumps emit zeros.
  while (sample_next_ <= now) {
    std::uint64_t issues_now = 0;
    for (const auto& p : procs_) issues_now += p.issues();
    const auto period = static_cast<double>(sample_period_);
    const double util =
        static_cast<double>(issues_now - sample_last_issues_) /
        (period * static_cast<double>(config_.num_processors));
    const double ready = static_cast<double>(sample_ready_sum_) / period;
    const double net = static_cast<double>(memory_ops_ - sample_last_mem_) /
                       (period * config_.network_ops_per_cycle);
    tl_util_.push_back({sample_next_, util});
    tl_ready_.push_back({sample_next_, ready});
    tl_net_.push_back({sample_next_, net});
    if (obs_.sink != nullptr)
      obs_.sink->counter(obs::Category::Issue, "ready_streams",
                         ts_us(sample_next_), obs_.pid, ready);
    sample_last_issues_ = issues_now;
    sample_last_mem_ = memory_ops_;
    sample_ready_sum_ = 0;
    sample_next_ += sample_period_;
  }
}

void Machine::finish_timeline(std::uint64_t now) {
  flush_samples(now);
  const std::uint64_t start = sample_next_ - sample_period_;
  if (now > start) {
    // Trailing partial bucket, normalized by its actual width.
    std::uint64_t issues_now = 0;
    for (const auto& p : procs_) issues_now += p.issues();
    const auto width = static_cast<double>(now - start);
    tl_util_.push_back(
        {now, static_cast<double>(issues_now - sample_last_issues_) /
                  (width * static_cast<double>(config_.num_processors))});
    tl_ready_.push_back({now, static_cast<double>(sample_ready_sum_) / width});
    tl_net_.push_back({now,
                       static_cast<double>(memory_ops_ - sample_last_mem_) /
                           (width * config_.network_ops_per_cycle)});
  }
  obs::MachineTimeline tl;
  tl.model = "mta";
  tl.name = config_.name;
  tl.sample_period_cycles = sample_period_;
  tl.series.push_back({"issue_utilization", std::move(tl_util_)});
  tl.series.push_back({"ready_streams", std::move(tl_ready_)});
  tl.series.push_back({"network_occupancy", std::move(tl_net_)});
  obs_.timeline->add(std::move(tl));
}

MtaRunResult Machine::run(std::uint64_t max_cycles) {
  begin_run(max_cycles);
  if (slow_)
    run_slow_loop();
  else
    advance_until(kNoLimit);
  return finish_run();
}

void Machine::begin_run(std::uint64_t max_cycles) {
  TC3I_EXPECTS(!ran_);
  ran_ = true;
  begun_ = true;
  max_cycles_ = max_cycles;
  obs_.runs->add();
  run_start_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  tracing_ = obs_.sink != nullptr;
  // Per-bucket counter tracks for the trace (issue utilization and memory
  // traffic); defaults to 4096-cycle buckets when no timeline is requested.
  const std::uint64_t bucket = config_.timeline_bucket_cycles;
  trace_bucket_ = bucket > 0 ? bucket : 4096;
  trace_next_ = trace_bucket_;
}

void Machine::emit_trace_buckets(std::uint64_t upto, bool final) {
  if (obs_.sink == nullptr) return;
  std::uint64_t instr_now = 0;
  for (const auto& p : procs_) instr_now += p.issues();
  while (trace_next_ <= upto || (final && trace_last_instr_ < instr_now)) {
    const std::uint64_t at = std::min(trace_next_, upto);
    const double slots = static_cast<double>(trace_bucket_) *
                         static_cast<double>(config_.num_processors);
    obs_.sink->counter(
        obs::Category::Issue, "issue_utilization", ts_us(at), obs_.pid,
        static_cast<double>(instr_now - trace_last_instr_) / slots);
    obs_.sink->counter(
        obs::Category::Memory, "memory_ops_per_bucket", ts_us(at), obs_.pid,
        static_cast<double>(memory_ops_ - trace_last_mem_));
    trace_last_instr_ = instr_now;
    trace_last_mem_ = memory_ops_;
    if (trace_next_ > upto) break;
    trace_next_ += trace_bucket_;
  }
}

void Machine::run_slow_loop() {
  TC3I_EXPECTS(begun_ && slow_);
  std::uint64_t now = now_;
  const std::uint64_t max_cycles = max_cycles_;
  const bool tracing = tracing_;
  const std::uint64_t bucket = config_.timeline_bucket_cycles;
  {
    // Reference loop: the pre-timing-wheel simulator, kept verbatim for
    // golden-equivalence testing. Binary-heap wake queue, every instruction
    // re-enters issue(), cycles advance one at a time between wakes.
    while (live_streams_ > 0 || !pending_.empty()) {
      if (now >= max_cycles) runaway_abort(now);
      if (tracing) emit_trace_buckets(now, /*final=*/false);

      while (!heap_.empty() && heap_.top().cycle <= now) {
        const Wake w = heap_.top();
        heap_.pop();
        make_stream_ready(w.stream);
      }

      if (sample_period_ != 0) {
        if (now >= sample_next_) flush_samples(now);
        sample_ready_sum_ += ready_count_;
      }

      bool any_ready = false;
      for (auto& p : procs_) {
        if (p.has_ready()) {
          any_ready = true;
          --ready_count_;
          issue(p.pop_ready(), now);
          if (bucket > 0) {
            const std::size_t b = static_cast<std::size_t>(now / bucket);
            if (b >= bucket_issues_.size()) bucket_issues_.resize(b + 1, 0);
            ++bucket_issues_[b];
          }
        } else {
          account_idle(p.id(), 1);
        }
      }

      if (any_ready) {
        ++now;
      } else if (!heap_.empty()) {
        const std::uint64_t next = std::max(now + 1, heap_.top().cycle);
        // The scan above attributed cycle `now`; the skipped span up to the
        // next wake is idle for every processor under an unchanged census.
        if (next - now > 1)
          for (auto& p : procs_) account_idle(p.id(), next - now - 1);
        now = next;
      } else {
        // No stream can ever become ready again: every remaining stream is
        // blocked on a full/empty bit that nobody will flip.
        TC3I_ASSERT(live_streams_ == 0 && pending_.empty());
      }
    }
  }
  now_ = now;
}

bool Machine::advance_until(std::uint64_t until) {
  TC3I_EXPECTS(begun_ && !slow_);
  std::uint64_t now = now_;
  // Hoisted so the issue loop branches on register-resident locals instead
  // of reloading members every iteration (issue() may alias them).
  const std::uint64_t max_cycles = max_cycles_;
  const bool tracing = tracing_;
  const std::uint64_t bucket = config_.timeline_bucket_cycles;
  {
    const auto spacing =
        static_cast<std::uint64_t>(config_.issue_spacing_cycles);
    // `until` bounds when the loop stops being (re)entered, not the issue
    // window: a window that started before `until` may overshoot it by up
    // to `spacing` cycles, and an idle jump may land past it. Lanes are
    // independent runs, so overshoot never changes simulated behavior.
    while ((live_streams_ > 0 || !pending_.empty()) && now < until) {
      if (now >= max_cycles) runaway_abort(now);
      if (tracing) emit_trace_buckets(now, /*final=*/false);

      wheel_.drain_due(now, [this](std::uint64_t, StreamId sid) {
        make_stream_ready(sid);
      });

      // Solo fast-forward: with one ready stream machine-wide (and no
      // tracing, timeline sampling, or dependency-graph capture observing
      // individual instructions), whole instruction runs retire
      // analytically.
      if (ready_count_ == 1 && !tracing && bucket == 0 &&
          sample_period_ == 0 && cap_ == nullptr) {
        now = run_solo(now, max_cycles);
        continue;
      }

      // Window batching: a stream issuing at cycle c re-wakes no earlier
      // than c + spacing, so between drains the only wakes that can land
      // inside the window come from spawns (spawn cost < spacing). Issue
      // up to min(next_due, now + spacing) cycles on the existing ready
      // queues without re-draining the wheel, shrinking the window
      // whenever an issued instruction pushes an earlier wake. (Tracing
      // samples per cycle, so it takes the one-cycle window.)
      std::uint64_t limit = now + 1;
      if (!tracing) {
        limit = now + spacing;
        const std::uint64_t nd = wheel_.next_due();
        if (nd < limit) limit = nd;
        if (limit <= now) limit = now + 1;
      }

      // The live-stream check mirrors the outer loop: when the last stream
      // quits mid-window the machine is dead, and scanning another cycle
      // would attribute a phantom idle slot past the end of the run.
      bool any_ready = true;
      while (any_ready && now < limit &&
             (live_streams_ > 0 || !pending_.empty())) {
        if (now >= max_cycles) runaway_abort(now);
        if (sample_period_ != 0) {
          if (now >= sample_next_) flush_samples(now);
          sample_ready_sum_ += ready_count_;
        }
        any_ready = false;
        pushed_min_ = sim::TimerWheel<StreamId>::kNone;
        for (auto& p : procs_) {
          if (p.has_ready()) {
            any_ready = true;
            --ready_count_;
            issue(p.pop_ready(), now);
            if (bucket > 0) {
              const std::size_t b = static_cast<std::size_t>(now / bucket);
              if (b >= bucket_issues_.size()) bucket_issues_.resize(b + 1, 0);
              ++bucket_issues_[b];
            }
          } else {
            account_idle(p.id(), 1);
          }
        }
        if (any_ready) {
          // A wake due at d must be delivered at the start of cycle
          // max(d, now + 1); end the window there if that is sooner.
          const std::uint64_t due = std::max(pushed_min_, now + 1);
          if (due < limit) limit = due;
          ++now;
        }
      }

      if (!any_ready) {
        if (!wheel_.empty()) {
          const std::uint64_t next = std::max(now + 1, wheel_.next_due());
          // The last scan attributed cycle `now`; the skipped span up to
          // the next wake is idle for every processor under an unchanged
          // census.
          if (next - now > 1)
            for (auto& p : procs_) account_idle(p.id(), next - now - 1);
          now = next;
        } else {
          // No stream can ever become ready again: every remaining stream
          // is blocked on a full/empty bit that nobody will flip.
          TC3I_ASSERT(live_streams_ == 0 && pending_.empty());
        }
      }
    }
  }
  now_ = now;
  return live_streams_ == 0 && pending_.empty();
}

MtaRunResult Machine::finish_run() {
  TC3I_EXPECTS(begun_ && live_streams_ == 0 && pending_.empty());
  begun_ = false;
  const std::uint64_t now = now_;
  const std::uint64_t bucket = config_.timeline_bucket_cycles;

  std::uint64_t used = 0;
  for (const auto& p : procs_) used += p.issues();
  instructions_ = used;

  emit_trace_buckets(now, /*final=*/true);
  if (sample_period_ != 0) finish_timeline(now);

  // Finalize the per-processor issue-slot accounts: used slots come from
  // the processors' issue tallies, and the account must be exhaustive —
  // every slot of every cycle attributed exactly once, on both simulation
  // paths.
  obs::IssueSlotAccount slots_total;
  for (std::size_t pi = 0; pi < procs_.size(); ++pi) {
    acct_[pi].acct.used = procs_[pi].issues();
    if (acct_[pi].acct.total() != now) {
      const auto& a = acct_[pi].acct;
      std::fprintf(stderr,
                   "[acct] proc %zu: total=%llu now=%llu used=%llu "
                   "no_stream=%llu spacing=%llu spawn=%llu memory=%llu "
                   "sync=%llu\n",
                   pi, (unsigned long long)a.total(), (unsigned long long)now,
                   (unsigned long long)a.used, (unsigned long long)a.no_stream,
                   (unsigned long long)a.spacing, (unsigned long long)a.spawn,
                   (unsigned long long)a.memory, (unsigned long long)a.sync);
    }
    TC3I_ASSERT(acct_[pi].acct.total() == now &&
                "issue-slot account must cover every cycle");
    slots_total += acct_[pi].acct;
  }

  MtaRunResult result;
  result.cycles = now;
  result.seconds = static_cast<double>(now) / config_.clock_hz;
  result.instructions_issued = instructions_;
  result.memory_ops = memory_ops_;
  result.spawns = spawns_;
  result.streams_completed = completed_;
  result.peak_live_streams = peak_live_;
  result.processor_utilization =
      now > 0 ? static_cast<double>(used) /
                    (static_cast<double>(now) *
                     static_cast<double>(config_.num_processors))
              : 0.0;
  result.network_utilization =
      now > 0 ? static_cast<double>(memory_ops_) /
                    (config_.network_ops_per_cycle * static_cast<double>(now))
              : 0.0;
  result.slots = slots_total;
  result.processor_slots.reserve(acct_.size());
  for (const ProcAcct& a : acct_) result.processor_slots.push_back(a.acct);
  obs_.issue_total->add(instructions_);
  obs_.slot_used->add(slots_total.used);
  obs_.slot_no_stream->add(slots_total.no_stream);
  obs_.slot_spacing->add(slots_total.spacing);
  obs_.slot_spawn->add(slots_total.spawn);
  obs_.slot_memory->add(slots_total.memory);
  obs_.slot_sync->add(slots_total.sync);
  obs_.issue_compute->add(issued_compute_);
  obs_.issue_memory->add(issued_memory_);
  obs_.issue_sync->add(issued_sync_);
  obs_.issue_spawn->add(issued_spawn_);
  obs_.network_ops->add(memory_ops_);
  obs_.sync_blocks->add(sync_blocks_);
  obs_.sync_handoffs->add(sync_handoffs_);
  memory_.flush_counters();
  obs_.peak_live->set(static_cast<double>(peak_live_));
  obs_.run_utilization->record(result.processor_utilization);
  if (bucket > 0) {
    result.utilization_timeline.reserve(bucket_issues_.size());
    const double slots_per_bucket =
        static_cast<double>(bucket) *
        static_cast<double>(config_.num_processors);
    for (const std::uint64_t issues_in_bucket : bucket_issues_)
      result.utilization_timeline.push_back(
          static_cast<double>(issues_in_bucket) / slots_per_bucket);
  }

  // Per-region counters (named after the regions actually used) and the
  // run's accounting record for the report's "machine_runs" section. The
  // registry was captured at construction: under the batched engine,
  // finalization runs outside the per-point registry scope.
  obs::CounterRegistry& reg = *obs_.registry;
  std::vector<obs::RegionRollup> rollups;
  for (std::size_t rid = 0; rid < region_tallies_.size(); ++rid) {
    const RegionTally& t = region_tallies_[rid];
    if (t.streams == 0 && t.instructions == 0) continue;
    const std::string& name = region_name(static_cast<int>(rid));
    reg.counter("mta.region." + name + ".instructions").add(t.instructions);
    reg.counter("mta.region." + name + ".streams").add(t.streams);
    rollups.push_back(
        obs::RegionRollup{name, t.streams, t.instructions, t.stream_cycles});
  }
  if (obs_.records != nullptr) {
    obs::RunRecord rec;
    rec.model = "mta";
    rec.name = config_.name;
    rec.processors = config_.num_processors;
    rec.threads = peak_live_;
    rec.cycles = now;
    rec.memory_ops = memory_ops_;
    rec.slots = slots_total;
    rec.network_utilization = result.network_utilization;
    rec.regions = std::move(rollups);
    rec.partitions = std::move(partition_rollups_);
    rec.elapsed_seconds = result.seconds;
    rec.utilization = result.processor_utilization;
    cap_finish_run(now, &rec);
    obs_.records->add(std::move(rec));
  } else {
    cap_finish_run(now, nullptr);
  }
  const auto end_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  obs_.run_wall_seconds->record(static_cast<double>(end_ns - run_start_ns_) *
                                1e-9);
  return result;
}

void Machine::cap_finish_run(std::uint64_t now, obs::RunRecord* rec) {
  if (cap_ == nullptr) return;
  // Run-end node: one cycle after the last quit (the cycle counter
  // advances past the final issue on both simulation paths).
  const std::uint32_t end = cap_->add_node(static_cast<double>(now));
  for (const CapStream& cs : cap_streams_)
    cap_->add_edge(cs.node, obs::DepKind::kCompute, obs::DepKind::kCompute,
                   1.0);
  cap_->end_node = end;
  cap_->total = static_cast<double>(now);
  // Throughput bounds the dependency path cannot see: the busiest
  // processor's issue slots (one instruction per cycle) and the shared
  // network's total service time. Neither scales with a what-if knob —
  // halving memory latency does not add network bandwidth.
  std::uint64_t max_issues = 0;
  for (const auto& p : procs_) max_issues = std::max(max_issues, p.issues());
  cap_->resources.push_back(obs::DepResource{
      "issue", obs::DepKind::kCompute, false,
      static_cast<double>(max_issues)});
  cap_->resources.push_back(obs::DepResource{
      "network", obs::DepKind::kMemory, false,
      static_cast<double>(memory_ops_) *
          (static_cast<double>(service_fp_) / static_cast<double>(kFpOne))});
  for (std::size_t rid = 0; rid < region_tallies_.size(); ++rid)
    cap_->region_names.push_back(region_name(static_cast<int>(rid)));
  if (rec != nullptr) rec->critical_path = obs::summarize(*cap_);
  cap_store_->add(std::move(*cap_graph_));
  cap_graph_.reset();
  cap_ = nullptr;
}

}  // namespace tc3i::mta
