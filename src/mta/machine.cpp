#include "mta/machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "obs/trace_sink.hpp"

namespace tc3i::mta {

namespace {

bool slow_sim_env() {
  const char* env = std::getenv("TC3I_SLOW_SIM");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

std::string MtaConfig::validate() const {
  std::ostringstream os;
  if (num_processors < 1) os << "num_processors < 1; ";
  if (clock_hz <= 0.0) os << "clock_hz <= 0; ";
  if (streams_per_processor < 1) os << "streams_per_processor < 1; ";
  if (issue_spacing_cycles < 1) os << "issue_spacing_cycles < 1; ";
  if (memory_latency_cycles < 1) os << "memory_latency_cycles < 1; ";
  if (network_ops_per_cycle <= 0.0) os << "network_ops_per_cycle <= 0; ";
  if (hw_spawn_cycles < 0) os << "hw_spawn_cycles < 0; ";
  if (sw_spawn_cycles < 0) os << "sw_spawn_cycles < 0; ";
  if (lookahead < 0) os << "lookahead < 0; ";
  if (memory_banks < 0) os << "memory_banks < 0; ";
  if (memory_banks > 0 && bank_busy_cycles < 1)
    os << "bank_busy_cycles < 1 with banks enabled; ";
  if (memory_words == 0) os << "memory_words == 0; ";
  return os.str();
}

Machine::Machine(MtaConfig config)
    : config_(std::move(config)), memory_(config_.memory_words) {
  const std::string err = config_.validate();
  if (!err.empty())
    contract_failure("MtaConfig", err.c_str(), __FILE__, __LINE__);
  slow_ = config_.slow_reference || slow_sim_env();
  procs_.reserve(static_cast<std::size_t>(config_.num_processors));
  for (int p = 0; p < config_.num_processors; ++p)
    procs_.emplace_back(p, config_.streams_per_processor);
  if (config_.memory_banks > 0)
    bank_free_fp_.resize(static_cast<std::size_t>(config_.memory_banks), 0);
  // Round-to-nearest keeps the fixed-point service interval within 2^-21
  // cycles of 1/rate; the drift over a saturated run is far below one part
  // in 10^6 of the cycle count.
  service_fp_ = static_cast<std::uint64_t>(
      std::llround(std::ldexp(1.0 / config_.network_ops_per_cycle, kFpBits)));
  TC3I_ASSERT(service_fp_ >= 1);
  load_tracker_.init(config_.num_processors, config_.streams_per_processor);
  free_slots_ = config_.num_processors * config_.streams_per_processor;

  obs::CounterRegistry& reg = obs::default_registry();
  obs_.issue_total = &reg.counter("mta.issue.total");
  obs_.issue_compute = &reg.counter("mta.issue.compute");
  obs_.issue_memory = &reg.counter("mta.issue.memory");
  obs_.issue_sync = &reg.counter("mta.issue.sync");
  obs_.issue_spawn = &reg.counter("mta.issue.spawn");
  obs_.network_ops = &reg.counter("mta.memory.network_ops");
  obs_.sync_blocks = &reg.counter("mta.sync.blocks");
  obs_.sync_handoffs = &reg.counter("mta.sync.handoffs");
  obs_.spawns_hw = &reg.counter("mta.spawn.hardware");
  obs_.spawns_sw = &reg.counter("mta.spawn.software");
  obs_.spawns_virtualized = &reg.counter("mta.spawn.virtualized");
  obs_.streams_completed = &reg.counter("mta.streams.completed");
  obs_.runs = &reg.counter("mta.runs");
  obs_.peak_live = &reg.gauge("mta.streams.peak_live");
  obs_.run_utilization = &reg.histogram("mta.run.processor_utilization");
  obs_.run_wall_seconds = &reg.histogram("mta.run.wall_seconds");
  obs_.sink = obs::global_sink();
  if (obs_.sink != nullptr)
    obs_.pid = obs_.sink->register_track(config_.name);
}

void Machine::push_wake(std::uint64_t at, StreamId sid) {
  if (slow_) {
    heap_.push(Wake{at, sid});
  } else {
    if (at < pushed_min_) pushed_min_ = at;
    wheel_.push(at, sid);
  }
}

void Machine::make_stream_ready(StreamId sid) {
  const Stream& s = streams_[static_cast<std::size_t>(sid)];
  procs_[static_cast<std::size_t>(s.proc)].make_ready(sid);
  ++ready_count_;
}

void Machine::add_stream(StreamProgram* program) {
  TC3I_EXPECTS(program != nullptr);
  TC3I_EXPECTS(!ran_);
  // Initial streams that exceed hardware slots are virtualized like
  // runtime spawns: they wait for a slot.
  if (free_slots_ == 0) {
    obs_.spawns_virtualized->add();
    // Blocking on the hardware stream resource is a synchronization wait:
    // the spawn parks until a running stream quits and frees its slot.
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "stream_virtualized", 0.0,
                         obs_.pid, static_cast<std::uint64_t>(pending_.size()));
    pending_.push(PendingSpawn{program, false});
    return;
  }
  activate(program, /*software=*/false, /*now=*/0);
}

void Machine::activate(StreamProgram* program, bool software,
                       std::uint64_t now) {
  TC3I_ASSERT(free_slots_ > 0);
  const int proc = load_tracker_.least_loaded();
  Processor& p = procs_[static_cast<std::size_t>(proc)];
  TC3I_ASSERT(p.has_free_slot());
  p.occupy_slot();
  load_tracker_.change(proc, +1);
  --free_slots_;

  const auto sid = static_cast<StreamId>(streams_.size());
  Stream s;
  s.program = program;
  s.vec = program->as_vector();
  s.proc = proc;
  streams_.push_back(s);
  ++live_streams_;
  peak_live_ = std::max(peak_live_, static_cast<std::uint64_t>(live_streams_));

  const std::uint64_t spawn_cost = static_cast<std::uint64_t>(
      software ? config_.sw_spawn_cycles : config_.hw_spawn_cycles);
  push_wake(now + spawn_cost, sid);

  (software ? obs_.spawns_sw : obs_.spawns_hw)->add();
  if (obs_.sink != nullptr) {
    obs_.sink->instant(obs::Category::Spawn,
                       software ? "spawn_sw" : "spawn_hw", ts_us(now),
                       obs_.pid, static_cast<std::uint64_t>(sid));
    obs_.sink->begin(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                     static_cast<std::uint64_t>(sid));
  }
}

std::uint64_t Machine::network_service(std::uint64_t now, Address addr) {
  std::uint64_t start_fp =
      std::max((now + 1) << kFpBits, network_free_fp_);
  if (config_.memory_banks > 0) {
    // Interleaved banks: the op also waits for its bank to free up. The
    // real machine hashed addresses so strided code spreads across banks.
    std::uint64_t key = addr;
    if (config_.hash_addresses) {
      key = SplitMix64(addr ^ 0x9e3779b97f4a7c15ULL).next();
    }
    const auto bank = static_cast<std::size_t>(
        key % static_cast<std::uint64_t>(config_.memory_banks));
    start_fp = std::max(start_fp, bank_free_fp_[bank]);
    bank_free_fp_[bank] =
        start_fp +
        (static_cast<std::uint64_t>(config_.bank_busy_cycles) << kFpBits);
  }
  network_free_fp_ = start_fp + service_fp_;
  ++memory_ops_;
  // ceil(start + memory_latency) in fixed point.
  return (start_fp +
          (static_cast<std::uint64_t>(config_.memory_latency_cycles)
           << kFpBits) +
          (kFpOne - 1)) >>
         kFpBits;
}

void Machine::complete_memory_op(StreamId sid, std::uint64_t now,
                                 Address addr) {
  const std::uint64_t done = network_service(now, addr);
  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);
  const auto lookahead = static_cast<std::size_t>(config_.lookahead);
  if (lookahead == 0) {
    // Fully dependent code: the stream waits for this operation.
    push_wake(std::max(done, spacing), sid);
    return;
  }
  // Explicit-dependence lookahead: the stream keeps issuing while at most
  // `lookahead` memory operations are outstanding; otherwise it waits for
  // the oldest one that must retire first.
  auto& outstanding = streams_[static_cast<std::size_t>(sid)].outstanding;
  while (!outstanding.empty() && outstanding.front() <= now)
    outstanding.pop_front();
  outstanding.push_back(done);
  std::uint64_t wake = spacing;
  if (outstanding.size() > lookahead)
    wake = std::max(wake, outstanding[outstanding.size() - 1 - lookahead]);
  push_wake(wake, sid);
}

void Machine::process_handoffs(std::uint64_t now) {
  for (const auto& h : memory_.drain_handoffs()) {
    Stream& s = streams_[static_cast<std::size_t>(h.stream)];
    TC3I_ASSERT(!s.dead);
    if (h.was_load) s.program->deliver(h.value);
    ++sync_handoffs_;
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "sync_unblock", ts_us(now),
                         obs_.pid, static_cast<std::uint64_t>(h.stream));
    // The queued operation completes now: one more trip through the network.
    complete_memory_op(h.stream, now, h.addr);
  }
}

void Machine::finish_stream(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  s.dead = true;
  --live_streams_;
  ++completed_;
  obs_.streams_completed->add();
  if (obs_.sink != nullptr)
    obs_.sink->end(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                   static_cast<std::uint64_t>(sid));
  procs_[static_cast<std::size_t>(s.proc)].release_slot();
  load_tracker_.change(s.proc, -1);
  ++free_slots_;
  if (!pending_.empty()) {
    const PendingSpawn ps = pending_.front();
    pending_.pop();
    activate(ps.program, ps.software, now);
  }
}

void Machine::issue(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  if (!s.has_cur) fetch_next(s);

  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);

  // The per-processor issue counters already tally every instruction
  // (pop_ready() increments them); instructions_ is derived from their sum
  // at the end of run() to keep this switch store-free beyond its tallies.
  switch (s.cur.op) {
    case Instr::Op::Compute: {
      ++issued_compute_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      push_wake(spacing, sid);
      break;
    }
    case Instr::Op::Load: {
      ++issued_memory_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::Store: {
      ++issued_memory_;
      memory_.store(s.cur.addr, s.cur.value);
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::SyncLoad: {
      ++issued_sync_;
      s.has_cur = false;
      const SyncAttempt a = memory_.try_sync_load(s.cur.addr, sid);
      if (a.succeeded) {
        s.program->deliver(a.value);
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      // On failure the stream waits in memory (no issue slots consumed).
      process_handoffs(now);
      break;
    }
    case Instr::Op::SyncStore: {
      ++issued_sync_;
      s.has_cur = false;
      const SyncAttempt a = memory_.try_sync_store(s.cur.addr, s.cur.value, sid);
      if (a.succeeded) {
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      process_handoffs(now);
      break;
    }
    case Instr::Op::Spawn: {
      ++spawns_;
      ++issued_spawn_;
      StreamProgram* target = s.cur.spawn;
      const bool software = s.cur.software_spawn;
      s.has_cur = false;
      TC3I_ASSERT(target != nullptr);
      if (free_slots_ > 0) {
        activate(target, software, now);
      } else {
        obs_.spawns_virtualized->add();
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "stream_virtualized",
                             ts_us(now), obs_.pid,
                             static_cast<std::uint64_t>(sid));
        pending_.push(PendingSpawn{target, software});
      }
      push_wake(spacing, sid);
      break;
    }
    case Instr::Op::Quit: {
      s.has_cur = false;
      finish_stream(sid, now);
      break;
    }
  }
}

std::uint64_t Machine::run_solo(std::uint64_t now, std::uint64_t max_cycles) {
  // Exactly one stream is ready machine-wide and the wheel is drained to
  // `now`, so no other stream can issue before the wheel's next due cycle.
  // Within that window this stream's instructions can be retired without
  // bouncing each one through the wake queue — and entire Compute runs
  // collapse to arithmetic. The wheel is not touched while in here (memory
  // ops complete inline), so `next_due` is loop-invariant.
  Processor* proc = nullptr;
  for (auto& p : procs_)
    if (p.has_ready()) proc = &p;
  TC3I_ASSERT(proc != nullptr);
  Processor& p = *proc;
  const StreamId sid = p.front_ready();
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  const auto spacing =
      static_cast<std::uint64_t>(config_.issue_spacing_cycles);
  const std::uint64_t next_due = wheel_.next_due();  // kNone when empty
  const bool la0 = config_.lookahead == 0;

  // The first issue consumes the ready-queue entry (counting one issue);
  // later ones are credited analytically.
  bool popped = false;
  const auto charge = [&](std::uint64_t n) {
    if (!popped) {
      (void)p.pop_ready();
      --ready_count_;
      popped = true;
      --n;
    }
    if (n > 0) p.add_issues(n);
  };

  while (true) {
    TC3I_ASSERT(now < max_cycles && "MTA simulation exceeded max_cycles");
    if (!s.has_cur) fetch_next(s);

    if (s.cur.op == Instr::Op::Compute) {
      // Issues land at now, now+S, ...; every issue after the first is
      // only sole-ready if it comes strictly before the next foreign wake.
      std::uint64_t k = s.cur.count;
      if (next_due != sim::TimerWheel<StreamId>::kNone)
        k = std::min(k, 1 + (next_due - 1 - now) / spacing);
      charge(k);
      issued_compute_ += k;
      s.cur.count -= k;
      if (s.cur.count == 0) s.has_cur = false;
      const std::uint64_t last = now + (k - 1) * spacing;
      const std::uint64_t wake = last + spacing;
      if (s.cur.count > 0 ||
          (next_due != sim::TimerWheel<StreamId>::kNone && next_due <= wake)) {
        // A foreign wake lands before (or at) our next issue: queue our
        // wake and let the generic loop arbitrate.
        push_wake(wake, sid);
        return last + 1;
      }
      now = wake;
      continue;
    }

    if (la0 && (s.cur.op == Instr::Op::Load || s.cur.op == Instr::Op::Store)) {
      charge(1);
      ++issued_memory_;
      if (s.cur.op == Instr::Op::Store) memory_.store(s.cur.addr, s.cur.value);
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      const std::uint64_t done = network_service(now, s.cur.addr);
      const std::uint64_t wake = std::max(done, now + spacing);
      if (next_due != sim::TimerWheel<StreamId>::kNone && next_due <= wake) {
        push_wake(wake, sid);
        return now + 1;
      }
      now = wake;
      continue;
    }

    // Sync ops, spawns, quits and lookahead>0 memory ops take the generic
    // path for one instruction, then the generic loop resumes (they can
    // wake other streams or change stream structure).
    if (!popped) {
      (void)p.pop_ready();
      --ready_count_;
      popped = true;
    } else {
      p.add_issues(1);
    }
    issue(sid, now);
    return now + 1;
  }
}

MtaRunResult Machine::run(std::uint64_t max_cycles) {
  TC3I_EXPECTS(!ran_);
  ran_ = true;
  obs_.runs->add();
  obs::Scope wall_timer(*obs_.run_wall_seconds);

  std::uint64_t now = 0;
  // Hoisted so the issue loop branches on a register-resident local instead
  // of reloading the member every iteration (issue() may alias obs_).
  const bool tracing = obs_.sink != nullptr;
  const std::uint64_t bucket = config_.timeline_bucket_cycles;
  std::vector<std::uint64_t> bucket_issues;

  // Per-bucket counter tracks for the trace (issue utilization and memory
  // traffic); defaults to 4096-cycle buckets when no timeline is requested.
  const std::uint64_t trace_bucket = bucket > 0 ? bucket : 4096;
  std::uint64_t trace_next = trace_bucket;
  std::uint64_t trace_last_instr = 0;
  std::uint64_t trace_last_mem = 0;
  const auto emit_trace_buckets = [&](std::uint64_t upto, bool final) {
    if (obs_.sink == nullptr) return;
    std::uint64_t instr_now = 0;
    for (const auto& p : procs_) instr_now += p.issues();
    while (trace_next <= upto || (final && trace_last_instr < instr_now)) {
      const std::uint64_t at = std::min(trace_next, upto);
      const double slots = static_cast<double>(trace_bucket) *
                           static_cast<double>(config_.num_processors);
      obs_.sink->counter(
          obs::Category::Issue, "issue_utilization", ts_us(at), obs_.pid,
          static_cast<double>(instr_now - trace_last_instr) / slots);
      obs_.sink->counter(
          obs::Category::Memory, "memory_ops_per_bucket", ts_us(at), obs_.pid,
          static_cast<double>(memory_ops_ - trace_last_mem));
      trace_last_instr = instr_now;
      trace_last_mem = memory_ops_;
      if (trace_next > upto) break;
      trace_next += trace_bucket;
    }
  };

  if (slow_) {
    // Reference loop: the pre-timing-wheel simulator, kept verbatim for
    // golden-equivalence testing. Binary-heap wake queue, every instruction
    // re-enters issue(), cycles advance one at a time between wakes.
    while (live_streams_ > 0 || !pending_.empty()) {
      TC3I_ASSERT(now < max_cycles && "MTA simulation exceeded max_cycles");
      if (tracing) emit_trace_buckets(now, /*final=*/false);

      while (!heap_.empty() && heap_.top().cycle <= now) {
        const Wake w = heap_.top();
        heap_.pop();
        make_stream_ready(w.stream);
      }

      bool any_ready = false;
      for (auto& p : procs_) {
        if (p.has_ready()) {
          any_ready = true;
          --ready_count_;
          issue(p.pop_ready(), now);
          if (bucket > 0) {
            const std::size_t b = static_cast<std::size_t>(now / bucket);
            if (b >= bucket_issues.size()) bucket_issues.resize(b + 1, 0);
            ++bucket_issues[b];
          }
        }
      }

      if (any_ready) {
        ++now;
      } else if (!heap_.empty()) {
        now = std::max(now + 1, heap_.top().cycle);
      } else {
        // No stream can ever become ready again: every remaining stream is
        // blocked on a full/empty bit that nobody will flip.
        TC3I_ASSERT(live_streams_ == 0 && pending_.empty());
      }
    }
  } else {
    const auto spacing =
        static_cast<std::uint64_t>(config_.issue_spacing_cycles);
    while (live_streams_ > 0 || !pending_.empty()) {
      TC3I_ASSERT(now < max_cycles && "MTA simulation exceeded max_cycles");
      if (tracing) emit_trace_buckets(now, /*final=*/false);

      wheel_.drain_due(now, [this](std::uint64_t, StreamId sid) {
        make_stream_ready(sid);
      });

      // Solo fast-forward: with one ready stream machine-wide (and no
      // tracing or timeline sampling observing individual cycles), whole
      // instruction runs retire analytically.
      if (ready_count_ == 1 && !tracing && bucket == 0) {
        now = run_solo(now, max_cycles);
        continue;
      }

      // Window batching: a stream issuing at cycle c re-wakes no earlier
      // than c + spacing, so between drains the only wakes that can land
      // inside the window come from spawns (spawn cost < spacing). Issue
      // up to min(next_due, now + spacing) cycles on the existing ready
      // queues without re-draining the wheel, shrinking the window
      // whenever an issued instruction pushes an earlier wake. (Tracing
      // samples per cycle, so it takes the one-cycle window.)
      std::uint64_t limit = now + 1;
      if (!tracing) {
        limit = now + spacing;
        const std::uint64_t nd = wheel_.next_due();
        if (nd < limit) limit = nd;
        if (limit <= now) limit = now + 1;
      }

      bool any_ready = true;
      while (any_ready && now < limit) {
        TC3I_ASSERT(now < max_cycles && "MTA simulation exceeded max_cycles");
        any_ready = false;
        pushed_min_ = sim::TimerWheel<StreamId>::kNone;
        for (auto& p : procs_) {
          if (p.has_ready()) {
            any_ready = true;
            --ready_count_;
            issue(p.pop_ready(), now);
            if (bucket > 0) {
              const std::size_t b = static_cast<std::size_t>(now / bucket);
              if (b >= bucket_issues.size()) bucket_issues.resize(b + 1, 0);
              ++bucket_issues[b];
            }
          }
        }
        if (any_ready) {
          // A wake due at d must be delivered at the start of cycle
          // max(d, now + 1); end the window there if that is sooner.
          const std::uint64_t due = std::max(pushed_min_, now + 1);
          if (due < limit) limit = due;
          ++now;
        }
      }

      if (!any_ready) {
        if (!wheel_.empty()) {
          now = std::max(now + 1, wheel_.next_due());
        } else {
          // No stream can ever become ready again: every remaining stream
          // is blocked on a full/empty bit that nobody will flip.
          TC3I_ASSERT(live_streams_ == 0 && pending_.empty());
        }
      }
    }
  }

  std::uint64_t used = 0;
  for (const auto& p : procs_) used += p.issues();
  instructions_ = used;

  emit_trace_buckets(now, /*final=*/true);

  MtaRunResult result;
  result.cycles = now;
  result.seconds = static_cast<double>(now) / config_.clock_hz;
  result.instructions_issued = instructions_;
  result.memory_ops = memory_ops_;
  result.spawns = spawns_;
  result.streams_completed = completed_;
  result.peak_live_streams = peak_live_;
  result.processor_utilization =
      now > 0 ? static_cast<double>(used) /
                    (static_cast<double>(now) *
                     static_cast<double>(config_.num_processors))
              : 0.0;
  result.network_utilization =
      now > 0 ? static_cast<double>(memory_ops_) /
                    (config_.network_ops_per_cycle * static_cast<double>(now))
              : 0.0;
  obs_.issue_total->add(instructions_);
  obs_.issue_compute->add(issued_compute_);
  obs_.issue_memory->add(issued_memory_);
  obs_.issue_sync->add(issued_sync_);
  obs_.issue_spawn->add(issued_spawn_);
  obs_.network_ops->add(memory_ops_);
  obs_.sync_blocks->add(sync_blocks_);
  obs_.sync_handoffs->add(sync_handoffs_);
  memory_.flush_counters();
  obs_.peak_live->set(static_cast<double>(peak_live_));
  obs_.run_utilization->record(result.processor_utilization);
  if (bucket > 0) {
    result.utilization_timeline.reserve(bucket_issues.size());
    const double slots_per_bucket =
        static_cast<double>(bucket) *
        static_cast<double>(config_.num_processors);
    for (const std::uint64_t issues_in_bucket : bucket_issues)
      result.utilization_timeline.push_back(
          static_cast<double>(issues_in_bucket) / slots_per_bucket);
  }
  return result;
}

}  // namespace tc3i::mta
