#include "mta/machine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/contracts.hpp"
#include "core/rng.hpp"
#include "obs/trace_sink.hpp"

namespace tc3i::mta {

std::string MtaConfig::validate() const {
  std::ostringstream os;
  if (num_processors < 1) os << "num_processors < 1; ";
  if (clock_hz <= 0.0) os << "clock_hz <= 0; ";
  if (streams_per_processor < 1) os << "streams_per_processor < 1; ";
  if (issue_spacing_cycles < 1) os << "issue_spacing_cycles < 1; ";
  if (memory_latency_cycles < 1) os << "memory_latency_cycles < 1; ";
  if (network_ops_per_cycle <= 0.0) os << "network_ops_per_cycle <= 0; ";
  if (hw_spawn_cycles < 0) os << "hw_spawn_cycles < 0; ";
  if (sw_spawn_cycles < 0) os << "sw_spawn_cycles < 0; ";
  if (lookahead < 0) os << "lookahead < 0; ";
  if (memory_banks < 0) os << "memory_banks < 0; ";
  if (memory_banks > 0 && bank_busy_cycles < 1)
    os << "bank_busy_cycles < 1 with banks enabled; ";
  if (memory_words == 0) os << "memory_words == 0; ";
  return os.str();
}

Machine::Machine(MtaConfig config)
    : config_(std::move(config)), memory_(config_.memory_words) {
  const std::string err = config_.validate();
  if (!err.empty())
    contract_failure("MtaConfig", err.c_str(), __FILE__, __LINE__);
  procs_.reserve(static_cast<std::size_t>(config_.num_processors));
  for (int p = 0; p < config_.num_processors; ++p)
    procs_.emplace_back(p, config_.streams_per_processor);
  if (config_.memory_banks > 0)
    bank_free_at_.resize(static_cast<std::size_t>(config_.memory_banks), 0.0);

  obs::CounterRegistry& reg = obs::default_registry();
  obs_.issue_total = &reg.counter("mta.issue.total");
  obs_.issue_compute = &reg.counter("mta.issue.compute");
  obs_.issue_memory = &reg.counter("mta.issue.memory");
  obs_.issue_sync = &reg.counter("mta.issue.sync");
  obs_.issue_spawn = &reg.counter("mta.issue.spawn");
  obs_.network_ops = &reg.counter("mta.memory.network_ops");
  obs_.sync_blocks = &reg.counter("mta.sync.blocks");
  obs_.sync_handoffs = &reg.counter("mta.sync.handoffs");
  obs_.spawns_hw = &reg.counter("mta.spawn.hardware");
  obs_.spawns_sw = &reg.counter("mta.spawn.software");
  obs_.spawns_virtualized = &reg.counter("mta.spawn.virtualized");
  obs_.streams_completed = &reg.counter("mta.streams.completed");
  obs_.runs = &reg.counter("mta.runs");
  obs_.peak_live = &reg.gauge("mta.streams.peak_live");
  obs_.run_utilization = &reg.histogram("mta.run.processor_utilization");
  obs_.run_wall_seconds = &reg.histogram("mta.run.wall_seconds");
  obs_.sink = obs::global_sink();
  if (obs_.sink != nullptr)
    obs_.pid = obs_.sink->register_track(config_.name);
}

int Machine::least_loaded_processor() const {
  int best = 0;
  for (int p = 1; p < static_cast<int>(procs_.size()); ++p)
    if (procs_[static_cast<std::size_t>(p)].live_streams() <
        procs_[static_cast<std::size_t>(best)].live_streams())
      best = p;
  return best;
}

void Machine::add_stream(StreamProgram* program) {
  TC3I_EXPECTS(program != nullptr);
  TC3I_EXPECTS(!ran_);
  // Initial streams that exceed hardware slots are virtualized like
  // runtime spawns: they wait for a slot.
  const int proc = least_loaded_processor();
  if (!procs_[static_cast<std::size_t>(proc)].has_free_slot()) {
    obs_.spawns_virtualized->add();
    // Blocking on the hardware stream resource is a synchronization wait:
    // the spawn parks until a running stream quits and frees its slot.
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "stream_virtualized", 0.0,
                         obs_.pid, static_cast<std::uint64_t>(pending_.size()));
    pending_.push(PendingSpawn{program, false});
    return;
  }
  activate(program, /*software=*/false, /*now=*/0);
}

void Machine::activate(StreamProgram* program, bool software,
                       std::uint64_t now) {
  const int proc = least_loaded_processor();
  Processor& p = procs_[static_cast<std::size_t>(proc)];
  TC3I_ASSERT(p.has_free_slot());
  p.occupy_slot();

  const auto sid = static_cast<StreamId>(streams_.size());
  Stream s;
  s.program = program;
  s.proc = proc;
  streams_.push_back(s);
  ++live_streams_;
  peak_live_ = std::max(peak_live_, static_cast<std::uint64_t>(live_streams_));

  const std::uint64_t spawn_cost = static_cast<std::uint64_t>(
      software ? config_.sw_spawn_cycles : config_.hw_spawn_cycles);
  wakes_.push(Wake{now + spawn_cost, sid});

  (software ? obs_.spawns_sw : obs_.spawns_hw)->add();
  if (obs_.sink != nullptr) {
    obs_.sink->instant(obs::Category::Spawn,
                       software ? "spawn_sw" : "spawn_hw", ts_us(now),
                       obs_.pid, static_cast<std::uint64_t>(sid));
    obs_.sink->begin(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                     static_cast<std::uint64_t>(sid));
  }
}

std::uint64_t Machine::network_service(std::uint64_t now, Address addr) {
  double start = std::max(static_cast<double>(now) + 1.0, network_free_at_);
  if (config_.memory_banks > 0) {
    // Interleaved banks: the op also waits for its bank to free up. The
    // real machine hashed addresses so strided code spreads across banks.
    std::uint64_t key = addr;
    if (config_.hash_addresses) {
      key = SplitMix64(addr ^ 0x9e3779b97f4a7c15ULL).next();
    }
    const auto bank = static_cast<std::size_t>(
        key % static_cast<std::uint64_t>(config_.memory_banks));
    start = std::max(start, bank_free_at_[bank]);
    bank_free_at_[bank] = start + static_cast<double>(config_.bank_busy_cycles);
  }
  network_free_at_ = start + 1.0 / config_.network_ops_per_cycle;
  ++memory_ops_;
  return static_cast<std::uint64_t>(
      std::ceil(start + static_cast<double>(config_.memory_latency_cycles)));
}

void Machine::complete_memory_op(StreamId sid, std::uint64_t now,
                                 Address addr) {
  const std::uint64_t done = network_service(now, addr);
  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);
  const auto lookahead = static_cast<std::size_t>(config_.lookahead);
  if (lookahead == 0) {
    // Fully dependent code: the stream waits for this operation.
    wakes_.push(Wake{std::max(done, spacing), sid});
    return;
  }
  // Explicit-dependence lookahead: the stream keeps issuing while at most
  // `lookahead` memory operations are outstanding; otherwise it waits for
  // the oldest one that must retire first.
  auto& outstanding = streams_[static_cast<std::size_t>(sid)].outstanding;
  while (!outstanding.empty() && outstanding.front() <= now)
    outstanding.pop_front();
  outstanding.push_back(done);
  std::uint64_t wake = spacing;
  if (outstanding.size() > lookahead)
    wake = std::max(wake, outstanding[outstanding.size() - 1 - lookahead]);
  wakes_.push(Wake{wake, sid});
}

void Machine::process_handoffs(std::uint64_t now) {
  for (const auto& h : memory_.drain_handoffs()) {
    Stream& s = streams_[static_cast<std::size_t>(h.stream)];
    TC3I_ASSERT(!s.dead);
    if (h.was_load) s.program->deliver(h.value);
    ++sync_handoffs_;
    if (obs_.sink != nullptr)
      obs_.sink->instant(obs::Category::Sync, "sync_unblock", ts_us(now),
                         obs_.pid, static_cast<std::uint64_t>(h.stream));
    // The queued operation completes now: one more trip through the network.
    complete_memory_op(h.stream, now, h.addr);
  }
}

void Machine::finish_stream(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  s.dead = true;
  --live_streams_;
  ++completed_;
  obs_.streams_completed->add();
  if (obs_.sink != nullptr)
    obs_.sink->end(obs::Category::Spawn, "stream", ts_us(now), obs_.pid,
                   static_cast<std::uint64_t>(sid));
  procs_[static_cast<std::size_t>(s.proc)].release_slot();
  if (!pending_.empty()) {
    const PendingSpawn ps = pending_.front();
    pending_.pop();
    activate(ps.program, ps.software, now);
  }
}

void Machine::issue(StreamId sid, std::uint64_t now) {
  Stream& s = streams_[static_cast<std::size_t>(sid)];
  TC3I_ASSERT(!s.dead);
  if (!s.has_cur) {
    if (!s.program->next(s.cur)) {
      s.cur.op = Instr::Op::Quit;
      s.cur.count = 1;
    }
    s.has_cur = true;
  }

  const std::uint64_t spacing =
      now + static_cast<std::uint64_t>(config_.issue_spacing_cycles);

  // The per-processor issue counters already tally every instruction
  // (pop_ready() increments them); instructions_ is derived from their sum
  // at the end of run() to keep this switch store-free beyond its tallies.
  switch (s.cur.op) {
    case Instr::Op::Compute: {
      ++issued_compute_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      wakes_.push(Wake{spacing, sid});
      break;
    }
    case Instr::Op::Load: {
      ++issued_memory_;
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::Store: {
      ++issued_memory_;
      memory_.store(s.cur.addr, s.cur.value);
      TC3I_ASSERT(s.cur.count > 0);
      if (--s.cur.count == 0) s.has_cur = false;
      complete_memory_op(sid, now, s.cur.addr);
      break;
    }
    case Instr::Op::SyncLoad: {
      ++issued_sync_;
      s.has_cur = false;
      const SyncAttempt a = memory_.try_sync_load(s.cur.addr, sid);
      if (a.succeeded) {
        s.program->deliver(a.value);
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      // On failure the stream waits in memory (no issue slots consumed).
      process_handoffs(now);
      break;
    }
    case Instr::Op::SyncStore: {
      ++issued_sync_;
      s.has_cur = false;
      const SyncAttempt a = memory_.try_sync_store(s.cur.addr, s.cur.value, sid);
      if (a.succeeded) {
        complete_memory_op(sid, now, s.cur.addr);
      } else {
        ++sync_blocks_;
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "sync_block", ts_us(now),
                             obs_.pid, static_cast<std::uint64_t>(sid));
      }
      process_handoffs(now);
      break;
    }
    case Instr::Op::Spawn: {
      ++spawns_;
      ++issued_spawn_;
      StreamProgram* target = s.cur.spawn;
      const bool software = s.cur.software_spawn;
      s.has_cur = false;
      TC3I_ASSERT(target != nullptr);
      bool slot_free = false;
      for (const auto& p : procs_)
        if (p.has_free_slot()) slot_free = true;
      if (slot_free) {
        activate(target, software, now);
      } else {
        obs_.spawns_virtualized->add();
        if (obs_.sink != nullptr)
          obs_.sink->instant(obs::Category::Sync, "stream_virtualized",
                             ts_us(now), obs_.pid,
                             static_cast<std::uint64_t>(sid));
        pending_.push(PendingSpawn{target, software});
      }
      wakes_.push(Wake{spacing, sid});
      break;
    }
    case Instr::Op::Quit: {
      s.has_cur = false;
      finish_stream(sid, now);
      break;
    }
  }
}

MtaRunResult Machine::run(std::uint64_t max_cycles) {
  TC3I_EXPECTS(!ran_);
  ran_ = true;
  obs_.runs->add();
  obs::Scope wall_timer(*obs_.run_wall_seconds);

  std::uint64_t now = 0;
  // Hoisted so the issue loop branches on a register-resident local instead
  // of reloading the member every iteration (issue() may alias obs_).
  const bool tracing = obs_.sink != nullptr;
  const std::uint64_t bucket = config_.timeline_bucket_cycles;
  std::vector<std::uint64_t> bucket_issues;

  // Per-bucket counter tracks for the trace (issue utilization and memory
  // traffic); defaults to 4096-cycle buckets when no timeline is requested.
  const std::uint64_t trace_bucket = bucket > 0 ? bucket : 4096;
  std::uint64_t trace_next = trace_bucket;
  std::uint64_t trace_last_instr = 0;
  std::uint64_t trace_last_mem = 0;
  const auto emit_trace_buckets = [&](std::uint64_t upto, bool final) {
    if (obs_.sink == nullptr) return;
    std::uint64_t instr_now = 0;
    for (const auto& p : procs_) instr_now += p.issues();
    while (trace_next <= upto || (final && trace_last_instr < instr_now)) {
      const std::uint64_t at = std::min(trace_next, upto);
      const double slots = static_cast<double>(trace_bucket) *
                           static_cast<double>(config_.num_processors);
      obs_.sink->counter(
          obs::Category::Issue, "issue_utilization", ts_us(at), obs_.pid,
          static_cast<double>(instr_now - trace_last_instr) / slots);
      obs_.sink->counter(
          obs::Category::Memory, "memory_ops_per_bucket", ts_us(at), obs_.pid,
          static_cast<double>(memory_ops_ - trace_last_mem));
      trace_last_instr = instr_now;
      trace_last_mem = memory_ops_;
      if (trace_next > upto) break;
      trace_next += trace_bucket;
    }
  };

  while (live_streams_ > 0 || !pending_.empty()) {
    TC3I_ASSERT(now < max_cycles && "MTA simulation exceeded max_cycles");
    if (tracing) emit_trace_buckets(now, /*final=*/false);

    while (!wakes_.empty() && wakes_.top().cycle <= now) {
      const Wake w = wakes_.top();
      wakes_.pop();
      const Stream& s = streams_[static_cast<std::size_t>(w.stream)];
      procs_[static_cast<std::size_t>(s.proc)].make_ready(w.stream);
    }

    bool any_ready = false;
    for (auto& p : procs_) {
      if (p.has_ready()) {
        any_ready = true;
        issue(p.pop_ready(), now);
        if (bucket > 0) {
          const std::size_t b = static_cast<std::size_t>(now / bucket);
          if (b >= bucket_issues.size()) bucket_issues.resize(b + 1, 0);
          ++bucket_issues[b];
        }
      }
    }

    if (any_ready) {
      ++now;
    } else if (!wakes_.empty()) {
      now = std::max(now + 1, wakes_.top().cycle);
    } else {
      // No stream can ever become ready again: every remaining stream is
      // blocked on a full/empty bit that nobody will flip.
      TC3I_ASSERT(live_streams_ == 0 && pending_.empty());
    }
  }

  std::uint64_t used = 0;
  for (const auto& p : procs_) used += p.issues();
  instructions_ = used;

  emit_trace_buckets(now, /*final=*/true);

  MtaRunResult result;
  result.cycles = now;
  result.seconds = static_cast<double>(now) / config_.clock_hz;
  result.instructions_issued = instructions_;
  result.memory_ops = memory_ops_;
  result.spawns = spawns_;
  result.streams_completed = completed_;
  result.peak_live_streams = peak_live_;
  result.processor_utilization =
      now > 0 ? static_cast<double>(used) /
                    (static_cast<double>(now) *
                     static_cast<double>(config_.num_processors))
              : 0.0;
  result.network_utilization =
      now > 0 ? static_cast<double>(memory_ops_) /
                    (config_.network_ops_per_cycle * static_cast<double>(now))
              : 0.0;
  obs_.issue_total->add(instructions_);
  obs_.issue_compute->add(issued_compute_);
  obs_.issue_memory->add(issued_memory_);
  obs_.issue_sync->add(issued_sync_);
  obs_.issue_spawn->add(issued_spawn_);
  obs_.network_ops->add(memory_ops_);
  obs_.sync_blocks->add(sync_blocks_);
  obs_.sync_handoffs->add(sync_handoffs_);
  memory_.flush_counters();
  obs_.peak_live->set(static_cast<double>(peak_live_));
  obs_.run_utilization->record(result.processor_utilization);
  if (bucket > 0) {
    result.utilization_timeline.reserve(bucket_issues.size());
    const double slots_per_bucket =
        static_cast<double>(bucket) *
        static_cast<double>(config_.num_processors);
    for (const std::uint64_t issues_in_bucket : bucket_issues)
      result.utilization_timeline.push_back(
          static_cast<double>(issues_in_bucket) / slots_per_bucket);
  }
  return result;
}

}  // namespace tc3i::mta
