// Programming-system constructs on top of the MTA simulator, mirroring what
// the paper used on the real machine:
//   - `#pragma multithreaded` chunked parallel loops (Program 2's shape),
//   - futures (software thread creation, result through a sync variable),
//   - full/empty-bit idioms: atomic fetch-add and completion barriers.
//
// Note on fidelity: the simulator's *timing* depends on instruction mix and
// full/empty transitions, not on data values, so builders emit value-free
// sync operations where the paper's code would carry data. Tests that check
// value semantics use CallbackProgram streams with real data flow instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mta/machine.hpp"
#include "mta/stream_program.hpp"

namespace tc3i::mta {

/// Appends the body of one loop iteration to a chunk's stream program.
using LoopBodyEmitter = std::function<void(VectorProgram&, std::size_t item)>;

/// Builds the Program-2 shape: `num_chunks` streams, chunk c covering items
/// [c*n/num_chunks, (c+1)*n/num_chunks). Each chunk begins with a small
/// prologue (bounds computation, local counter initialization) of
/// `prologue_instructions`. The streams are registered with `machine` and
/// start at cycle 0 — this is the compiler-generated whole-loop spawn the
/// paper charges ~2 cycles per thread for.
std::vector<VectorProgram*> build_parallel_loop(
    ProgramPool& pool, Machine& machine, std::size_t num_items,
    std::size_t num_chunks, const LoopBodyEmitter& emit_body,
    std::uint64_t prologue_instructions = 8);

/// A future: `parent` spawns a software thread that runs `emit_body` and
/// then sync-stores its result into `result_cell`. The consumer claims the
/// result by appending a sync load of `result_cell` (see await_future).
VectorProgram* emit_future(ProgramPool& pool, VectorProgram& parent,
                           Address result_cell,
                           const std::function<void(VectorProgram&)>& emit_body);

/// Appends the consumer side of a future: blocks until the producer has
/// sync-stored the result.
void await_future(VectorProgram& consumer, Address result_cell);

/// Appends an atomic fetch-add on a full/empty counter cell: sync load
/// (acquires exclusive access, cell goes EMPTY) then sync store (releases,
/// cell goes FULL). The cell must have been initialized FULL.
void append_atomic_fetch_add(VectorProgram& program, Address counter_cell);

/// Initializes `count` contiguous cells starting at `base` to FULL with
/// value 0 (counters) — a direct use of store_full.
void init_counter_cells(Machine& machine, Address base, std::size_t count);

/// Appends the master side of a completion barrier: one sync load per
/// worker done-cell. Workers signal by sync-storing their cell.
void await_all(VectorProgram& master, Address done_base, std::size_t count);

/// Appends the worker's completion signal.
void signal_done(VectorProgram& worker, Address done_base, std::size_t index);

/// Emits a logarithmic spawn tree: instead of `parent` issuing one spawn
/// per worker (serialized at one instruction per 21 cycles), it spawns
/// `fanout` intermediate spawner streams, which spawn their own children,
/// and so on — all `workers` are live after ~log_fanout(n) levels. This is
/// how real MTA codes fanned out hundreds of streams quickly; see
/// bench/ablate_mta_spawn_tree for the latency difference.
void emit_spawn_tree(ProgramPool& pool, VectorProgram& parent,
                     std::vector<StreamProgram*> workers,
                     std::size_t fanout = 4, bool software = false);

/// A parallel sum reduction with real data flow: `values[i]` is produced
/// by its own stream into a sync cell; internal tree nodes (CallbackProgram
/// streams that branch on delivered values) sum their children's cells and
/// publish upward. After the run, the root cell holds the exact sum —
/// read it with machine.memory().load(root). Returns the root cell.
/// Demonstrates that the simulator carries values, not just timing.
Address emit_sum_reduction(ProgramPool& pool, Machine& machine,
                           const std::vector<Word>& values,
                           Address cell_base, std::size_t fanout = 4);

/// Full combining-tree fork/join: workers are spawned through a tree AND
/// joined through the same tree (each internal node awaits its children's
/// done cells, then signals its own), so both sides are O(log n) at the
/// parent instead of O(n). Appends the completion signal to each worker,
/// allocates done cells starting at `cell_base`, and appends the root
/// awaits to `parent`. Returns the first unused cell address.
Address emit_tree_fork_join(ProgramPool& pool, VectorProgram& parent,
                            const std::vector<VectorProgram*>& workers,
                            Address cell_base, std::size_t fanout = 4,
                            bool software = false);

}  // namespace tc3i::mta
