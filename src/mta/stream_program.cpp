#include "mta/stream_program.hpp"

#include <deque>
#include <mutex>

#include "core/contracts.hpp"

namespace tc3i::mta {

namespace {

bool valid_region_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}

struct RegionTable {
  std::mutex mu;
  // deque: appends never move existing names, so region_name() can hand out
  // stable references without holding the lock.
  std::deque<std::string> names{"main"};
};

RegionTable& region_table() {
  static RegionTable table;
  return table;
}

}  // namespace

int region_id(std::string_view name) {
  TC3I_EXPECTS(!name.empty());
  for (char c : name) TC3I_EXPECTS(valid_region_char(c));
  RegionTable& table = region_table();
  std::lock_guard lock(table.mu);
  for (std::size_t i = 0; i < table.names.size(); ++i)
    if (table.names[i] == name) return static_cast<int>(i);
  table.names.emplace_back(name);
  return static_cast<int>(table.names.size() - 1);
}

const std::string& region_name(int id) {
  RegionTable& table = region_table();
  std::lock_guard lock(table.mu);
  TC3I_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < table.names.size());
  return table.names[static_cast<std::size_t>(id)];
}

int region_count() {
  RegionTable& table = region_table();
  std::lock_guard lock(table.mu);
  return static_cast<int>(table.names.size());
}

void VectorProgram::compute(std::uint64_t n) {
  if (n == 0) return;
  if (!instrs_.empty() && instrs_.back().op == Instr::Op::Compute) {
    instrs_.back().count += n;
    return;
  }
  Instr i;
  i.op = Instr::Op::Compute;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::load(Address addr, std::uint64_t n) {
  if (n == 0) return;
  if (!instrs_.empty() && instrs_.back().op == Instr::Op::Load &&
      instrs_.back().addr == addr) {
    instrs_.back().count += n;
    return;
  }
  Instr i;
  i.op = Instr::Op::Load;
  i.addr = addr;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::store(Address addr, Word value, std::uint64_t n) {
  if (n == 0) return;
  Instr i;
  i.op = Instr::Op::Store;
  i.addr = addr;
  i.value = value;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::sync_load(Address addr) {
  Instr i;
  i.op = Instr::Op::SyncLoad;
  i.addr = addr;
  instrs_.push_back(i);
}

void VectorProgram::sync_store(Address addr, Word value) {
  Instr i;
  i.op = Instr::Op::SyncStore;
  i.addr = addr;
  i.value = value;
  instrs_.push_back(i);
}

void VectorProgram::spawn(StreamProgram* program, bool software) {
  TC3I_EXPECTS(program != nullptr);
  Instr i;
  i.op = Instr::Op::Spawn;
  i.spawn = program;
  i.software_spawn = software;
  instrs_.push_back(i);
}

std::uint64_t VectorProgram::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& i : instrs_)
    total += (i.op == Instr::Op::Compute || i.op == Instr::Op::Load ||
              i.op == Instr::Op::Store)
                 ? i.count
                 : 1;
  return total;
}

VectorProgram* ProgramPool::make_vector() {
  programs_.push_back(std::make_unique<VectorProgram>());
  return static_cast<VectorProgram*>(programs_.back().get());
}

CallbackProgram* ProgramPool::make_callback(
    CallbackProgram::NextFn next_fn, CallbackProgram::DeliverFn deliver_fn) {
  programs_.push_back(std::make_unique<CallbackProgram>(
      std::move(next_fn), std::move(deliver_fn)));
  return static_cast<CallbackProgram*>(programs_.back().get());
}

}  // namespace tc3i::mta
