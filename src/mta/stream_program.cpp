#include "mta/stream_program.hpp"

#include "core/contracts.hpp"

namespace tc3i::mta {

void VectorProgram::compute(std::uint64_t n) {
  if (n == 0) return;
  if (!instrs_.empty() && instrs_.back().op == Instr::Op::Compute) {
    instrs_.back().count += n;
    return;
  }
  Instr i;
  i.op = Instr::Op::Compute;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::load(Address addr, std::uint64_t n) {
  if (n == 0) return;
  if (!instrs_.empty() && instrs_.back().op == Instr::Op::Load &&
      instrs_.back().addr == addr) {
    instrs_.back().count += n;
    return;
  }
  Instr i;
  i.op = Instr::Op::Load;
  i.addr = addr;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::store(Address addr, Word value, std::uint64_t n) {
  if (n == 0) return;
  Instr i;
  i.op = Instr::Op::Store;
  i.addr = addr;
  i.value = value;
  i.count = n;
  instrs_.push_back(i);
}

void VectorProgram::sync_load(Address addr) {
  Instr i;
  i.op = Instr::Op::SyncLoad;
  i.addr = addr;
  instrs_.push_back(i);
}

void VectorProgram::sync_store(Address addr, Word value) {
  Instr i;
  i.op = Instr::Op::SyncStore;
  i.addr = addr;
  i.value = value;
  instrs_.push_back(i);
}

void VectorProgram::spawn(StreamProgram* program, bool software) {
  TC3I_EXPECTS(program != nullptr);
  Instr i;
  i.op = Instr::Op::Spawn;
  i.spawn = program;
  i.software_spawn = software;
  instrs_.push_back(i);
}

std::uint64_t VectorProgram::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& i : instrs_)
    total += (i.op == Instr::Op::Compute || i.op == Instr::Op::Load ||
              i.op == Instr::Op::Store)
                 ? i.count
                 : 1;
  return total;
}

VectorProgram* ProgramPool::make_vector() {
  programs_.push_back(std::make_unique<VectorProgram>());
  return static_cast<VectorProgram*>(programs_.back().get());
}

CallbackProgram* ProgramPool::make_callback(
    CallbackProgram::NextFn next_fn, CallbackProgram::DeliverFn deliver_fn) {
  programs_.push_back(std::make_unique<CallbackProgram>(
      std::move(next_fn), std::move(deliver_fn)));
  return static_cast<CallbackProgram*>(programs_.back().get());
}

}  // namespace tc3i::mta
