// Small descriptive-statistics helpers used by the benchmark harnesses and
// by tests that assert distributional properties of simulator outputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tc3i {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile of an unsorted sample, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Geometric mean; all inputs must be positive.
[[nodiscard]] double geomean(std::span<const double> sample);

/// Relative error |measured - reference| / |reference|.
[[nodiscard]] double relative_error(double measured, double reference);

/// Least-squares slope of y against x (used to check speedup linearity).
[[nodiscard]] double linear_slope(std::span<const double> x,
                                  std::span<const double> y);

/// Pearson correlation coefficient.
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

}  // namespace tc3i
