#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tc3i {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  TC3I_EXPECTS(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  TC3I_EXPECTS(n_ > 1);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  TC3I_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  TC3I_EXPECTS(n_ > 0);
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> sample, double p) {
  TC3I_EXPECTS(!sample.empty());
  TC3I_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geomean(std::span<const double> sample) {
  TC3I_EXPECTS(!sample.empty());
  double log_sum = 0.0;
  for (double x : sample) {
    TC3I_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

double relative_error(double measured, double reference) {
  TC3I_EXPECTS(reference != 0.0);
  return std::abs(measured - reference) / std::abs(reference);
}

double linear_slope(std::span<const double> x, std::span<const double> y) {
  TC3I_EXPECTS(x.size() == y.size());
  TC3I_EXPECTS(x.size() >= 2);
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - sx.mean()) * (y[i] - sy.mean());
    sxx += (x[i] - sx.mean()) * (x[i] - sx.mean());
  }
  TC3I_EXPECTS(sxx > 0.0);
  return sxy / sxx;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  TC3I_EXPECTS(x.size() == y.size());
  TC3I_EXPECTS(x.size() >= 2);
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - sx.mean();
    const double dy = y[i] - sy.mean();
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  TC3I_EXPECTS(sxx > 0.0 && syy > 0.0);
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace tc3i
