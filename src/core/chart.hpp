// ASCII chart rendering: the paper's Figures 1-4 are speedup curves; the
// figure benches render them as terminal plots so the shape is visible in
// bench output without any plotting dependency.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace tc3i {

/// One named series of (x, y) points.
struct ChartSeries {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// A fixed-size character-grid scatter/line chart.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label,
             int width = 60, int height = 20);

  void add_series(ChartSeries series);

  /// Adds the ideal y = x reference line (used for speedup plots).
  void add_identity_line(double x_max);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  std::vector<ChartSeries> series_;
};

}  // namespace tc3i
