#include "core/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/contracts.hpp"

namespace tc3i {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  TC3I_EXPECTS(!name.empty());
  TC3I_EXPECTS(!flags_.contains(name));
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // A flag at the end of the line or followed by another flag is a
      // bare boolean switch: `--counters --trace-out t.json` works.
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)
        value = "true";
      else
        value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

bool CliParser::is_set(const std::string& name) const {
  auto it = flags_.find(name);
  TC3I_EXPECTS(it != flags_.end());
  return it->second.value.has_value();
}

std::string CliParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  TC3I_EXPECTS(it != flags_.end());
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    contract_failure("Flag parse (int)", name.c_str(), __FILE__, __LINE__);
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    contract_failure("Flag parse (double)", name.c_str(), __FILE__, __LINE__);
  }
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  contract_failure("Flag parse (bool)", name.c_str(), __FILE__, __LINE__);
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << '\n';
  }
  return os.str();
}

}  // namespace tc3i
