// Lightweight contract macros in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations abort with a
// message; they are enabled in all build types because every simulator in
// this project is deterministic and cheap relative to its invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tc3i {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace tc3i

#define TC3I_EXPECTS(cond)                                             \
  do {                                                                 \
    if (!(cond))                                                       \
      ::tc3i::contract_failure("Precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define TC3I_ENSURES(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::tc3i::contract_failure("Postcondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define TC3I_ASSERT(cond)                                             \
  do {                                                                \
    if (!(cond))                                                      \
      ::tc3i::contract_failure("Invariant", #cond, __FILE__, __LINE__); \
  } while (0)
