// Minimal command-line flag parsing for the bench and example binaries.
// Flags are --name=value or --name value; a bare --name (at end of line or
// followed by another flag) reads as the boolean "true". Unknown flags are
// an error so that typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tc3i {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Registers a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// True when the flag was explicitly given on the command line (as
  /// opposed to falling back to its default). Lets callers distinguish
  /// "user asked for --jobs 4" from "defaulted to 4".
  [[nodiscard]] bool is_set(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace tc3i
