// Plain-text table rendering for the benchmark harnesses. Every bench binary
// prints the paper's table next to the measured reproduction using this.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tc3i {

/// A simple left/right-aligned text table with a header row and a title.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header; fixes the column count.
  void header(std::vector<std::string> cells);

  /// Appends a row; must match the header width.
  void row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    row({format_cell(values)...});
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  void render(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  /// Formats a double with `digits` significant decimals, trimming zeros.
  static std::string num(double value, int decimals = 2);

 private:
  template <typename T>
  static std::string format_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return num(static_cast<double>(value));
    } else {
      return std::to_string(value);
    }
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tc3i
