// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (scenario generators,
// synthetic workloads, failure injection in tests) draws from these
// generators with an explicit seed, so all results are reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>

#include "core/contracts.hpp"

namespace tc3i {

/// SplitMix64: used to expand a single user seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, high quality; the
/// project-wide default engine.
class Rng {
 public:
  using result_type = std::uint64_t;

  static constexpr std::uint64_t kDefaultSeed = 0x1998'5c98'c31b'5017ULL;

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound). Rejection-free Lemire reduction.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic two-call cache).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p);

  /// Split off an independent generator (for per-entity substreams).
  Rng split();

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tc3i
