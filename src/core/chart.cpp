#include "core/chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/contracts.hpp"
#include "core/table.hpp"

namespace tc3i {

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label, int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {
  TC3I_EXPECTS(width >= 10 && height >= 5);
}

void AsciiChart::add_series(ChartSeries series) {
  TC3I_EXPECTS(series.x.size() == series.y.size());
  TC3I_EXPECTS(!series.x.empty());
  series_.push_back(std::move(series));
}

void AsciiChart::add_identity_line(double x_max) {
  TC3I_EXPECTS(x_max > 0.0);
  ChartSeries ideal{"ideal (y = x)", '.', {}, {}};
  const int samples = width_;
  for (int i = 0; i <= samples; ++i) {
    const double x = x_max * static_cast<double>(i) / samples;
    ideal.x.push_back(x);
    ideal.y.push_back(x);
  }
  series_.push_back(std::move(ideal));
}

void AsciiChart::render(std::ostream& os) const {
  TC3I_EXPECTS(!series_.empty());
  double x_min = series_[0].x[0], x_max = x_min;
  double y_min = series_[0].y[0], y_max = y_min;
  for (const auto& s : series_) {
    for (double v : s.x) {
      x_min = std::min(x_min, v);
      x_max = std::max(x_max, v);
    }
    for (double v : s.y) {
      y_min = std::min(y_min, v);
      y_max = std::max(y_max, v);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto plot = [&](double x, double y, char marker) {
    const double fx = (x - x_min) / (x_max - x_min);
    const double fy = (y - y_min) / (y_max - y_min);
    const int cx = std::clamp(static_cast<int>(std::lround(fx * (width_ - 1))),
                              0, width_ - 1);
    const int cy = std::clamp(static_cast<int>(std::lround(fy * (height_ - 1))),
                              0, height_ - 1);
    auto& cell = grid[static_cast<std::size_t>(height_ - 1 - cy)]
                     [static_cast<std::size_t>(cx)];
    // Data markers take precedence over the reference line's '.'.
    if (cell == ' ' || cell == '.') cell = marker;
  };
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.x.size(); ++i) plot(s.x[i], s.y[i], s.marker);

  os << title_ << "   (" << y_label_ << " vs " << x_label_ << ")\n";
  for (int r = 0; r < height_; ++r) {
    if (r == 0)
      os << TextTable::num(y_max) << '\t';
    else if (r == height_ - 1)
      os << TextTable::num(y_min) << '\t';
    else
      os << '\t';
    os << '|' << grid[static_cast<std::size_t>(r)] << "|\n";
  }
  os << '\t' << ' ' << TextTable::num(x_min);
  for (int i = 0; i < width_ - 10; ++i) os << ' ';
  os << TextTable::num(x_max) << '\n';
  for (const auto& s : series_)
    os << "\t  " << s.marker << " = " << s.name << '\n';
}

std::string AsciiChart::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace tc3i
