// Strongly named time/work units used across the simulators.
//
// Simulated time is kept in double-precision *cycles* inside each machine
// model (every model has a single clock) and converted to seconds only at
// reporting boundaries. Work is counted in abstract instructions and bytes.
#pragma once

#include <cstdint>

namespace tc3i {

/// Simulated cycle count (fractional cycles appear in fluid models).
using Cycles = double;

/// Simulated wall-clock seconds.
using Seconds = double;

/// Abstract instruction count emitted by the instrumented kernels.
using Instructions = std::uint64_t;

/// Bytes of memory traffic that miss cache / cross the network.
using Bytes = std::uint64_t;

constexpr Seconds cycles_to_seconds(Cycles c, double clock_hz) {
  return c / clock_hz;
}

constexpr Cycles seconds_to_cycles(Seconds s, double clock_hz) {
  return s * clock_hz;
}

}  // namespace tc3i
