#include "core/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/contracts.hpp"

namespace tc3i {

void TextTable::header(std::vector<std::string> cells) {
  TC3I_EXPECTS(!cells.empty());
  TC3I_EXPECTS(header_.empty());
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  TC3I_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& os) const {
  TC3I_EXPECTS(!header_.empty());
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto rule = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) line(r);
  rule();
}

std::string TextTable::str() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string TextTable::num(double value, int decimals) {
  TC3I_EXPECTS(decimals >= 0 && decimals <= 12);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace tc3i
