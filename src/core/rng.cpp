#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace tc3i {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // xoshiro state must not be all-zero; SplitMix64 cannot produce four zero
  // outputs in a row, but guard anyway for safety with adversarial seeds.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TC3I_EXPECTS(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TC3I_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random bits into the mantissa: uniform on [0,1) with full double grid.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TC3I_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  TC3I_EXPECTS(stddev >= 0.0);
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) {
  TC3I_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace tc3i
