// The paper's published numbers (every table), used by the bench harnesses
// to print paper-vs-measured and by EXPERIMENTS.md generation.
#pragma once

#include <string>
#include <vector>

namespace tc3i::platforms::paper {

// --- Table 2 / Table 8: sequential execution (seconds, 5 scenarios) -------
inline constexpr double kThreatSeqAlpha = 187.0;
inline constexpr double kThreatSeqPPro = 458.0;
inline constexpr double kThreatSeqExemplar = 343.0;
inline constexpr double kThreatSeqTera = 2584.0;

inline constexpr double kTerrainSeqAlpha = 158.0;
inline constexpr double kTerrainSeqPPro = 197.0;
inline constexpr double kTerrainSeqExemplar = 228.0;
inline constexpr double kTerrainSeqTera = 978.0;

// --- Table 3 / Figure 1: multithreaded Threat Analysis on Pentium Pro -----
struct ScalingRow {
  int processors;
  double seconds;
};
inline const std::vector<ScalingRow>& threat_ppro_rows() {
  static const std::vector<ScalingRow> rows = {
      {1, 466.0}, {2, 233.0}, {3, 157.0}, {4, 117.0}};
  return rows;
}

// --- Table 4 / Figure 2: multithreaded Threat Analysis on Exemplar --------
inline const std::vector<ScalingRow>& threat_exemplar_rows() {
  static const std::vector<ScalingRow> rows = {
      {1, 343.0}, {2, 172.0}, {3, 115.0}, {4, 87.0},
      {5, 69.0},  {6, 58.0},  {7, 50.0},  {8, 43.0},
      {9, 39.0},  {10, 35.0}, {11, 32.0}, {12, 29.0},
      {13, 27.0}, {14, 26.0}, {15, 24.0}, {16, 22.0}};
  return rows;
}

// --- Table 5: multithreaded Threat Analysis on the Tera MTA ---------------
inline constexpr double kThreatTera1Proc = 82.0;
inline constexpr double kThreatTera2Proc = 46.0;

// --- Table 6: Threat Analysis on the Tera MTA vs number of chunks ---------
struct ChunkRow {
  int chunks;
  double seconds;
};
inline const std::vector<ChunkRow>& threat_tera_chunk_rows() {
  static const std::vector<ChunkRow> rows = {{8, 386.0},  {16, 197.0},
                                             {32, 104.0}, {64, 61.0},
                                             {128, 46.0}, {256, 46.0}};
  return rows;
}

// --- Table 9 / Figure 3: coarse-grained Terrain Masking on Pentium Pro ----
inline const std::vector<ScalingRow>& terrain_ppro_rows() {
  static const std::vector<ScalingRow> rows = {
      {1, 172.0}, {2, 97.0}, {3, 74.0}, {4, 65.0}};
  return rows;
}

// --- Table 10 / Figure 4: coarse-grained Terrain Masking on Exemplar ------
inline const std::vector<ScalingRow>& terrain_exemplar_rows() {
  static const std::vector<ScalingRow> rows = {
      {1, 228.0}, {2, 102.0}, {3, 90.0},  {4, 59.0},
      {5, 62.0},  {6, 43.0},  {7, 51.0},  {8, 37.0},
      {9, 49.0},  {10, 34.0}, {11, 41.0}, {12, 34.0},
      {13, 32.0}, {14, 40.0}, {15, 41.0}, {16, 37.0}};
  return rows;
}

// --- Table 11: fine-grained Terrain Masking on the Tera MTA ----------------
inline constexpr double kTerrainTera1Proc = 48.0;
inline constexpr double kTerrainTera2Proc = 34.0;

}  // namespace tc3i::platforms::paper
