// The four platforms of the paper's Table 1, with the model parameters
// attached to each. Compute and memory rates are calibrated (see
// calibration.hpp); structural parameters (processor counts, clocks,
// thread/lock costs, bus headroom) are set here.
#pragma once

#include <string>

#include "mta/machine.hpp"
#include "smp/config.hpp"

namespace tc3i::platforms {

struct PlatformSpec {
  std::string name;
  std::string cpu_description;
  std::string memory;
  std::string operating_system;
  int processors = 1;
  double clock_hz = 0.0;

  /// mem_bw_total / mem_bw_single: how much more traffic the whole bus
  /// sustains than one processor can draw. Fitted per platform; this is
  /// what bounds memory-bound speedup (Tables 9 and 10).
  double bus_headroom = 1.0;

  /// OS thread-creation cost in cycles ("tens of thousands to hundreds of
  /// thousands" on conventional platforms, per the paper's §7).
  double thread_spawn_cycles = 50'000.0;
  /// Lock acquire/release cost in cycles ("hundreds to thousands").
  double lock_cycles = 400.0;
};

/// Table 1 rows.
[[nodiscard]] PlatformSpec alpha_spec();      // Digital AlphaStation, 1x500MHz
[[nodiscard]] PlatformSpec ppro_spec();       // NeTpower Sparta, 4x200MHz
[[nodiscard]] PlatformSpec exemplar_spec();   // HP Exemplar, 16x180MHz
[[nodiscard]] PlatformSpec tera_spec();       // Tera MTA, 2x255MHz

/// Builds the SMP machine config from a spec plus calibrated rates.
[[nodiscard]] smp::SmpConfig make_smp_config(const PlatformSpec& spec,
                                             double compute_rate_ips,
                                             double mem_bw_single);

/// Builds the MTA machine config (architectural constants from §2 of the
/// paper: 21-cycle issue spacing, no caches, 128 streams/processor; the
/// network service rate reflects the under-development interconnect).
[[nodiscard]] mta::MtaConfig make_mta_config(int num_processors);

}  // namespace tc3i::platforms
