// Per-platform rate calibration.
//
// The paper's two sequential anchor rows per platform (Table 2's Threat
// Analysis time, Table 8's Terrain Masking time) plus the measured
// workload totals (abstract instructions and bus bytes of each benchmark)
// give two linear equations in two unknowns:
//
//   t_TA = C_TA / r_compute + M_TA / r_memory
//   t_TM = C_TM / r_compute + M_TM / r_memory
//
// Solving yields each platform's effective compute rate and single-stream
// memory bandwidth. Everything *parallel* in the reproduction is then
// emergent from the machine models — the sequential rows are fitted by
// construction and the parallel rows are the actual test of the models.
#pragma once

#include <string>

#include "core/units.hpp"

namespace tc3i::platforms {

/// Workload totals over all five scenarios of each benchmark.
struct WorkloadTotals {
  double threat_ops = 0.0;
  double threat_bytes = 0.0;
  double terrain_ops = 0.0;
  double terrain_bytes = 0.0;
};

struct SequentialAnchors {
  Seconds threat_seconds = 0.0;   // Table 2 row
  Seconds terrain_seconds = 0.0;  // Table 8 row
};

struct CalibratedRates {
  double compute_rate_ips = 0.0;
  double mem_bw_single = 0.0;
};

/// Solves the 2x2 system. Aborts if the solution is non-physical
/// (non-positive rates), which would mean the cost model's workload mix is
/// inconsistent with the paper's anchor times.
[[nodiscard]] CalibratedRates solve_rates(const SequentialAnchors& anchors,
                                          const WorkloadTotals& totals);

}  // namespace tc3i::platforms
