// The shared experiment layer: builds the calibrated testbed (workload
// profiles + platform configs) once, and exposes one function per
// experimental configuration in the paper. Every bench binary and the
// calibration tests go through these functions, so all reported numbers
// come from a single code path.
#pragma once

#include <vector>

#include "c3i/cost_model.hpp"
#include "c3i/terrain/scenario_gen.hpp"
#include "c3i/terrain/sequential.hpp"
#include "c3i/terrain/trace_builder.hpp"
#include "c3i/threat/scenario_gen.hpp"
#include "c3i/threat/sequential.hpp"
#include "c3i/threat/trace_builder.hpp"
#include "mta/batched_machine.hpp"
#include "platforms/calibration.hpp"
#include "platforms/platform.hpp"
#include "smp/machine.hpp"

namespace tc3i::platforms {

struct Testbed {
  // Cost model (full-scale magnitudes).
  c3i::ThreatCosts threat_costs;
  c3i::TerrainCosts terrain_costs;

  // Full-scale workload profiles (five scenarios each).
  std::vector<c3i::threat::PairProfile> threat_profiles;
  std::vector<c3i::terrain::TerrainProfile> terrain_profiles;

  // Scaled workloads for the cycle-level MTA simulation. Magnitudes are
  // reduced with the ALU/memory mix preserved, so per-instruction timing
  // regimes match and extrapolation by instruction ratio is exact
  // (DESIGN.md §1 step 4).
  c3i::ThreatCosts threat_costs_scaled;
  c3i::TerrainCosts terrain_costs_scaled;
  c3i::threat::PairProfile threat_profile_scaled;
  c3i::terrain::TerrainProfile terrain_profile_scaled;
  double threat_mta_factor = 1.0;   ///< full instr / scaled instr
  double terrain_mta_factor = 1.0;

  // Calibrated platform configs.
  smp::SmpConfig alpha;
  smp::SmpConfig ppro;
  smp::SmpConfig exemplar;

  // Calibration inputs, exposed for reporting.
  WorkloadTotals totals;
};

/// Builds the full testbed (runs the instrumented kernels, calibrates all
/// platforms). Takes a few seconds; bench binaries build it once (through
/// the profile cache in platforms/testbed_cache.hpp).
[[nodiscard]] Testbed build_testbed();

// --- testbed construction stages --------------------------------------------
// build_testbed() = assemble_testbed(profile_testbed_kernels(
//     testbed_scenarios())). The stages are exposed separately so the
// testbed cache (testbed_cache.hpp) can fingerprint the deterministic
// scenario inputs and persist only the expensive kernel-profiling stage.

/// The deterministic scenario inputs the testbed profiles are computed from.
struct TestbedScenarios {
  std::vector<c3i::threat::Scenario> threat;
  std::vector<c3i::terrain::GeometryScenario> terrain;
  c3i::threat::Scenario threat_scaled;
  c3i::terrain::GeometryScenario terrain_scaled;
};

/// Kernel-profiling outputs: everything in a Testbed that is expensive to
/// compute. The rest of build_testbed() derives from these in milliseconds.
struct TestbedProfiles {
  std::vector<c3i::threat::PairProfile> threat;
  std::vector<c3i::terrain::TerrainProfile> terrain;
  c3i::threat::PairProfile threat_scaled;
  c3i::terrain::TerrainProfile terrain_scaled;
};

[[nodiscard]] TestbedScenarios testbed_scenarios();
[[nodiscard]] TestbedProfiles profile_testbed_kernels(
    const TestbedScenarios& scenarios);
[[nodiscard]] Testbed assemble_testbed(TestbedProfiles profiles);

// --- workload accounting ----------------------------------------------------
[[nodiscard]] double threat_total_instructions(
    const c3i::threat::PairProfile& profile, const c3i::ThreatCosts& costs);
[[nodiscard]] double terrain_total_instructions(
    const c3i::terrain::TerrainProfile& profile, const c3i::TerrainCosts& costs);

// --- conventional-platform experiments (seconds, 5-scenario totals) --------
[[nodiscard]] double threat_seq_seconds(const Testbed& tb,
                                        const smp::SmpConfig& cfg);
[[nodiscard]] double threat_chunked_seconds(const Testbed& tb,
                                            const smp::SmpConfig& cfg,
                                            int chunks, int processors);
[[nodiscard]] double terrain_seq_seconds(const Testbed& tb,
                                         const smp::SmpConfig& cfg);
[[nodiscard]] double terrain_coarse_seconds(const Testbed& tb,
                                            const smp::SmpConfig& cfg,
                                            int workers, int processors,
                                            int blocks_per_side = 10);
/// Ablation: static round-robin threat assignment instead of the dynamic
/// queue of Program 4.
[[nodiscard]] double terrain_coarse_static_seconds(const Testbed& tb,
                                                   const smp::SmpConfig& cfg,
                                                   int workers, int processors,
                                                   int blocks_per_side = 10);

// --- Tera MTA experiments (seconds, extrapolated 5-scenario totals) --------
[[nodiscard]] double mta_threat_seq_seconds(const Testbed& tb);
[[nodiscard]] double mta_threat_chunked_seconds(const Testbed& tb, int chunks,
                                                int processors);
[[nodiscard]] double mta_threat_finegrained_seconds(const Testbed& tb,
                                                    int processors);
[[nodiscard]] double mta_terrain_seq_seconds(const Testbed& tb);
[[nodiscard]] double mta_terrain_fine_seconds(const Testbed& tb,
                                              int processors);
/// Parameterized form for schedule ablations.
[[nodiscard]] double mta_terrain_fine_seconds(
    const Testbed& tb, int processors,
    const c3i::terrain::MtaFineParams& params);

// --- Batched MTA sweep points ----------------------------------------------
// The mta_*_seconds functions above run one scalar machine per call. The
// point constructors below expose the same experiments as
// mta::BatchPoint values so the table benches can hand a whole grid to the
// batched lockstep engine (--lanes x --jobs); the seconds functions are
// implemented over the same points, so every reported number still flows
// through one code path. `seconds_factor` is the testbed's
// instruction-scaling extrapolation (threat_mta_factor /
// terrain_mta_factor), applied to MtaRunResult::seconds by
// run_mta_points(). A point's build closure captures `tb` by reference;
// the testbed must outlive the point.
struct MtaPoint {
  mta::BatchPoint batch;
  double seconds_factor = 1.0;
};

[[nodiscard]] MtaPoint mta_threat_seq_point(const Testbed& tb);
[[nodiscard]] MtaPoint mta_threat_chunked_point(const Testbed& tb, int chunks,
                                                int processors);
[[nodiscard]] MtaPoint mta_threat_finegrained_point(const Testbed& tb,
                                                    int processors);
[[nodiscard]] MtaPoint mta_terrain_seq_point(const Testbed& tb);
[[nodiscard]] MtaPoint mta_terrain_fine_point(const Testbed& tb,
                                              int processors);
[[nodiscard]] MtaPoint mta_terrain_fine_point(
    const Testbed& tb, int processors,
    const c3i::terrain::MtaFineParams& params);

/// Runs the points through mta::run_batched_sweep (scalar fallback rules
/// apply; see batched_machine.hpp) and returns the extrapolated seconds per
/// point in submission order. run_threads > 1 instead partitions each
/// point's single simulation across that many host threads
/// (mta::run_partitioned, with its own scalar-fallback rules) while --jobs
/// still schedules whole points concurrently; the batched lane engine and
/// the partitioned engine are mutually exclusive per run, so lanes is
/// ignored on that path. Output is byte-identical either way.
[[nodiscard]] std::vector<double> run_mta_points(
    const std::vector<MtaPoint>& points, int lanes, int jobs,
    int run_threads = 1);

}  // namespace tc3i::platforms
