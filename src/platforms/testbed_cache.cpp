#include "platforms/testbed_cache.hpp"

#include "obs/counters.hpp"
#include "obs/flight.hpp"
#include "obs/live.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace tc3i::platforms {

namespace {

namespace fs = std::filesystem;
namespace threat = c3i::threat;
namespace terrain = c3i::terrain;

// Bump when the serialized layout or the set of cached fields changes.
constexpr std::uint32_t kFormatVersion = 1;
constexpr char kMagic[8] = {'T', 'C', '3', 'I', 'T', 'B', 'C', '\0'};

// --- fingerprint (FNV-1a over every scenario field) --------------------------

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) u64(static_cast<unsigned char>(c));
  }
};

std::uint64_t fingerprint(const TestbedScenarios& s) {
  Fnv f;
  f.u64(kFormatVersion);
  const auto threat_scenario = [&f](const threat::Scenario& sc) {
    f.str(sc.name);
    f.f64(sc.dt);
    f.u64(sc.threats.size());
    for (const auto& t : sc.threats) {
      f.f64(t.launch_pos.x), f.f64(t.launch_pos.y), f.f64(t.launch_pos.z);
      f.f64(t.impact_pos.x), f.f64(t.impact_pos.y), f.f64(t.impact_pos.z);
      f.f64(t.launch_time), f.f64(t.flight_time);
      f.f64(t.apex_altitude), f.f64(t.detect_time);
    }
    f.u64(sc.weapons.size());
    for (const auto& w : sc.weapons) {
      f.f64(w.pos.x), f.f64(w.pos.y), f.f64(w.pos.z);
      f.f64(w.interceptor_speed), f.f64(w.max_range);
      f.f64(w.min_intercept_alt), f.f64(w.max_intercept_alt);
      f.f64(w.reaction_time);
    }
  };
  const auto geometry = [&f](const terrain::GeometryScenario& g) {
    f.str(g.name);
    f.i64(g.x_size), f.i64(g.y_size);
    f.u64(g.threats.size());
    for (const auto& t : g.threats) {
      f.i64(t.x), f.i64(t.y);
      f.f64(t.sensor_height);
      f.i64(t.radius);
    }
  };
  f.u64(s.threat.size());
  for (const auto& sc : s.threat) threat_scenario(sc);
  f.u64(s.terrain.size());
  for (const auto& g : s.terrain) geometry(g);
  threat_scenario(s.threat_scaled);
  geometry(s.terrain_scaled);
  return f.h;
}

// --- flat binary serialization ----------------------------------------------

struct Writer {
  std::vector<std::uint8_t> bytes;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  void u32v(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (const std::uint32_t x : v) u64(x);
  }
};

struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;
  std::uint64_t u64() {
    if (end - p < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
  }
  bool u32v(std::vector<std::uint32_t>& out, std::uint64_t max_len) {
    const std::uint64_t n = u64();
    if (!ok || n > max_len) return ok = false;
    out.resize(n);
    for (auto& x : out) x = static_cast<std::uint32_t>(u64());
    return ok;
  }
};

void write_pair_profile(Writer& w, const threat::PairProfile& p) {
  w.u64(p.num_threats);
  w.u64(p.num_weapons);
  w.u32v(p.steps);
  w.u32v(p.intervals_found);
}

bool read_pair_profile(Reader& r, threat::PairProfile& p) {
  p.num_threats = r.u64();
  p.num_weapons = r.u64();
  return r.u32v(p.steps, 1u << 26) && r.u32v(p.intervals_found, 1u << 26);
}

void write_terrain_profile(Writer& w, const terrain::TerrainProfile& p) {
  w.u64(static_cast<std::uint64_t>(p.x_size));
  w.u64(static_cast<std::uint64_t>(p.y_size));
  w.u64(p.threats.size());
  for (const auto& t : p.threats) {
    w.u64(static_cast<std::uint64_t>(t.region.x0));
    w.u64(static_cast<std::uint64_t>(t.region.y0));
    w.u64(static_cast<std::uint64_t>(t.region.x1));
    w.u64(static_cast<std::uint64_t>(t.region.y1));
    w.u64(t.kernel_cells);
    w.u64(t.simple_cells);
    w.u32v(t.ring_sizes);
  }
}

bool read_terrain_profile(Reader& r, terrain::TerrainProfile& p) {
  p.x_size = static_cast<int>(r.u64());
  p.y_size = static_cast<int>(r.u64());
  const std::uint64_t n = r.u64();
  if (!r.ok || n > (1u << 22)) return false;
  p.threats.resize(n);
  for (auto& t : p.threats) {
    t.region.x0 = static_cast<int>(r.u64());
    t.region.y0 = static_cast<int>(r.u64());
    t.region.x1 = static_cast<int>(r.u64());
    t.region.y1 = static_cast<int>(r.u64());
    t.kernel_cells = r.u64();
    t.simple_cells = r.u64();
    if (!r.u32v(t.ring_sizes, 1u << 22)) return false;
  }
  return r.ok;
}

// --- cache file I/O ----------------------------------------------------------

/// Empty when caching is disabled via TC3I_TESTBED_CACHE=0/off.
fs::path cache_file_path(std::uint64_t fp) {
  fs::path dir;
  if (const char* env = std::getenv("TC3I_TESTBED_CACHE")) {
    const std::string v = env;
    if (v.empty() || v == "0" || v == "off") return {};
    dir = v;
  } else {
    std::error_code ec;
    dir = fs::temp_directory_path(ec);
    if (ec) return {};
  }
  char name[64];
  std::snprintf(name, sizeof(name), "tc3i_testbed_%016llx.bin",
                static_cast<unsigned long long>(fp));
  return dir / name;
}

bool try_load(const fs::path& path, std::uint64_t fp, TestbedProfiles& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes;
  bool ok = size > 0;
  if (ok) {
    bytes.resize(static_cast<std::size_t>(size));
    ok = std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size();
  }
  std::fclose(f);
  if (!ok || bytes.size() < sizeof(kMagic)) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return false;

  Reader r{bytes.data() + sizeof(kMagic), bytes.data() + bytes.size()};
  if (r.u64() != kFormatVersion || r.u64() != fp || !r.ok) return false;
  const std::uint64_t num_threat = r.u64();
  if (!r.ok || num_threat > 64) return false;
  out.threat.resize(num_threat);
  for (auto& p : out.threat)
    if (!read_pair_profile(r, p)) return false;
  const std::uint64_t num_terrain = r.u64();
  if (!r.ok || num_terrain > 64) return false;
  out.terrain.resize(num_terrain);
  for (auto& p : out.terrain)
    if (!read_terrain_profile(r, p)) return false;
  if (!read_pair_profile(r, out.threat_scaled)) return false;
  if (!read_terrain_profile(r, out.terrain_scaled)) return false;
  return r.ok && r.p == r.end;
}

// GCC 12 misattributes the vector growth inside insert() as a write past
// the old allocation when inlining under sanitizer instrumentation
// (spurious -Wstringop-overflow; the insert is into a freshly grown
// buffer). Scoped to this function only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
void try_save(const fs::path& path, std::uint64_t fp,
              const TestbedProfiles& profiles) {
  Writer w;
  w.bytes.insert(w.bytes.end(), kMagic, kMagic + sizeof(kMagic));
  w.u64(kFormatVersion);
  w.u64(fp);
  w.u64(profiles.threat.size());
  for (const auto& p : profiles.threat) write_pair_profile(w, p);
  w.u64(profiles.terrain.size());
  for (const auto& p : profiles.terrain) write_terrain_profile(w, p);
  write_pair_profile(w, profiles.threat_scaled);
  write_terrain_profile(w, profiles.terrain_scaled);

  // Write to a temp name then rename, so a concurrent reader never sees a
  // partial file (rename within one directory is atomic on POSIX).
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (f == nullptr) return;
  const bool ok = std::fwrite(w.bytes.data(), 1, w.bytes.size(), f) ==
                  w.bytes.size();
  std::fclose(f);
  std::error_code ec;
  if (ok) {
    fs::rename(tmp, path, ec);
  }
  if (!ok || ec) fs::remove(tmp, ec);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

Testbed load_or_build_testbed() {
  const TestbedScenarios scenarios = testbed_scenarios();
  const std::uint64_t fp = fingerprint(scenarios);
  const fs::path path = cache_file_path(fp);
  // Hit/miss counters feed the SweepReport host section: a sweep that
  // suddenly spends seconds in kernel profiling shows up as misses there
  // instead of as an unexplained wall-time regression. A disabled cache
  // counts as a miss (the profiles are recomputed either way).
  // The live bus keeps its own hit/miss tally: mid-sweep the default
  // registry is shadowed by per-point scoped registries, so it cannot be
  // read live.
  obs::LiveBus* bus = obs::live_bus();
  obs::CounterRegistry& reg = obs::default_registry();
  if (path.empty()) {
    reg.counter("testbed.cache.miss").add();
    if (bus != nullptr) bus->record_cache(false);
    obs::flight::emit(obs::flight::EventKind::kCacheMiss);
    return assemble_testbed(profile_testbed_kernels(scenarios));
  }

  TestbedProfiles profiles;
  if (try_load(path, fp, profiles)) {
    reg.counter("testbed.cache.hit").add();
    if (bus != nullptr) bus->record_cache(true);
    obs::flight::emit(obs::flight::EventKind::kCacheHit);
    return assemble_testbed(std::move(profiles));
  }

  reg.counter("testbed.cache.miss").add();
  if (bus != nullptr) bus->record_cache(false);
  obs::flight::emit(obs::flight::EventKind::kCacheMiss);
  profiles = profile_testbed_kernels(scenarios);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  try_save(path, fp, profiles);
  return assemble_testbed(std::move(profiles));
}

}  // namespace tc3i::platforms
