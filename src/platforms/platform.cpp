#include "platforms/platform.hpp"

#include "core/contracts.hpp"

namespace tc3i::platforms {

PlatformSpec alpha_spec() {
  PlatformSpec s;
  s.name = "Alpha";
  s.cpu_description = "1 x 500 MHz Digital Alpha 21164A";
  s.memory = "500 MB";
  s.operating_system = "Digital Unix 4.0C";
  s.processors = 1;
  s.clock_hz = 500e6;
  s.bus_headroom = 1.0;
  return s;
}

PlatformSpec ppro_spec() {
  PlatformSpec s;
  s.name = "Pentium Pro";
  s.cpu_description = "4 x 200 MHz Intel Pentium Pro";
  s.memory = "500 MB";
  s.operating_system = "Windows NT 4.0";
  s.processors = 4;
  s.clock_hz = 200e6;
  // Fitted to Table 9's saturation (3.0x on 4 processors): the shared
  // P6 bus sustains ~1.1x one processor's streaming draw.
  s.bus_headroom = 1.1;
  s.thread_spawn_cycles = 80'000.0;  // Win32 CreateThread era
  s.lock_cycles = 600.0;
  return s;
}

PlatformSpec exemplar_spec() {
  PlatformSpec s;
  s.name = "Exemplar";
  s.cpu_description = "16 x 180 MHz HP PA-8000";
  s.memory = "4 GB";
  s.operating_system = "SPP-UX 5.3";
  s.processors = 16;
  s.clock_hz = 180e6;
  // Fitted to Table 10's saturation (~6-7x): the hypernode interconnect
  // sustains ~4.4x one processor's streaming draw.
  s.bus_headroom = 4.4;
  s.thread_spawn_cycles = 60'000.0;
  s.lock_cycles = 500.0;
  return s;
}

PlatformSpec tera_spec() {
  PlatformSpec s;
  s.name = "Tera MTA";
  s.cpu_description = "2 x 255 MHz Tera MTA-1";
  s.memory = "2 GB";
  s.operating_system = "Carlos";
  s.processors = 2;
  s.clock_hz = 255e6;
  return s;
}

smp::SmpConfig make_smp_config(const PlatformSpec& spec,
                               double compute_rate_ips, double mem_bw_single) {
  TC3I_EXPECTS(compute_rate_ips > 0.0);
  TC3I_EXPECTS(mem_bw_single > 0.0);
  smp::SmpConfig cfg;
  cfg.name = spec.name;
  cfg.num_processors = spec.processors;
  cfg.clock_hz = spec.clock_hz;
  cfg.compute_rate_ips = compute_rate_ips;
  cfg.mem_bw_single = mem_bw_single;
  cfg.mem_bw_total = mem_bw_single * spec.bus_headroom;
  cfg.thread_spawn_cycles = spec.thread_spawn_cycles;
  cfg.lock_cycles = spec.lock_cycles;
  return cfg;
}

mta::MtaConfig make_mta_config(int num_processors) {
  mta::MtaConfig cfg;
  cfg.name = "Tera MTA";
  cfg.num_processors = num_processors;
  cfg.clock_hz = 255e6;
  cfg.streams_per_processor = 128;
  cfg.issue_spacing_cycles = 21;   // "one instruction every 21 cycles"
  cfg.memory_latency_cycles = 70;  // ~70 cycles to uncached shared memory
  // Fitted to Table 5's 1.8x two-processor speedup on the compute-heavier
  // mix (and producing ~1.4x on the memory-heavier Terrain Masking mix):
  // the prototype network serviced well under one memory op per cycle.
  cfg.network_ops_per_cycle = 0.39;
  cfg.hw_spawn_cycles = 2;     // compiler-created thread create/terminate
  cfg.sw_spawn_cycles = 60;    // programmer-created (futures): 50-100 cycles
  return cfg;
}

}  // namespace tc3i::platforms
