#include "platforms/calibration.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace tc3i::platforms {

CalibratedRates solve_rates(const SequentialAnchors& anchors,
                            const WorkloadTotals& totals) {
  TC3I_EXPECTS(anchors.threat_seconds > 0.0 && anchors.terrain_seconds > 0.0);
  TC3I_EXPECTS(totals.threat_ops > 0.0 && totals.terrain_ops > 0.0);
  TC3I_EXPECTS(totals.threat_bytes >= 0.0 && totals.terrain_bytes > 0.0);

  // Unknowns u = 1/r_compute, v = 1/r_memory:
  //   threat_ops  * u + threat_bytes  * v = t_TA
  //   terrain_ops * u + terrain_bytes * v = t_TM
  const double det = totals.threat_ops * totals.terrain_bytes -
                     totals.terrain_ops * totals.threat_bytes;
  TC3I_EXPECTS(std::abs(det) > 1e-12 && "workload vectors are collinear");
  const double u = (anchors.threat_seconds * totals.terrain_bytes -
                    anchors.terrain_seconds * totals.threat_bytes) /
                   det;
  const double v = (totals.threat_ops * anchors.terrain_seconds -
                    totals.terrain_ops * anchors.threat_seconds) /
                   det;
  TC3I_ENSURES(u > 0.0 &&
               "calibration: compute rate non-positive — cost model "
               "inconsistent with anchors");
  TC3I_ENSURES(v > 0.0 &&
               "calibration: memory rate non-positive — cost model "
               "inconsistent with anchors");
  return CalibratedRates{1.0 / u, 1.0 / v};
}

}  // namespace tc3i::platforms
