#include "platforms/experiment.hpp"

#include <utility>

#include "c3i/scenario.hpp"
#include "c3i/terrain/scenario_gen.hpp"
#include "c3i/threat/scenario_gen.hpp"
#include "core/contracts.hpp"
#include "mta/partitioned_machine.hpp"
#include "obs/run_record.hpp"
#include "platforms/paper.hpp"
#include "sim/sweep.hpp"

namespace tc3i::platforms {

namespace threat = c3i::threat;
namespace terrain = c3i::terrain;

double threat_total_instructions(const threat::PairProfile& profile,
                                 const c3i::ThreatCosts& costs) {
  return static_cast<double>(profile.total_steps()) *
             static_cast<double>(costs.ops_per_step()) +
         static_cast<double>(profile.total_intervals()) *
             static_cast<double>(costs.alu_per_interval +
                                 costs.mem_per_interval);
}

double terrain_total_instructions(const terrain::TerrainProfile& profile,
                                  const c3i::TerrainCosts& costs) {
  const double init_cells = static_cast<double>(profile.x_size) *
                            static_cast<double>(profile.y_size);
  return static_cast<double>(profile.total_kernel_cells()) *
             static_cast<double>(costs.ops_per_kernel_cell()) +
         (static_cast<double>(profile.total_simple_cells()) + init_cells) *
             static_cast<double>(costs.ops_per_simple_cell());
}

namespace {

/// Scales a cost structure's magnitudes down by an integer divisor while
/// preserving the ALU/memory mix (exactness checked).
c3i::ThreatCosts scale_threat_costs(const c3i::ThreatCosts& c, int divisor) {
  c3i::ThreatCosts s = c;
  TC3I_EXPECTS(c.alu_per_step % divisor == 0 && c.mem_per_step % divisor == 0);
  s.alu_per_step = c.alu_per_step / divisor;
  s.mem_per_step = c.mem_per_step / divisor;
  return s;
}

c3i::TerrainCosts scale_terrain_costs(const c3i::TerrainCosts& c, int divisor) {
  c3i::TerrainCosts s = c;
  TC3I_EXPECTS(c.alu_per_kernel_cell % divisor == 0 &&
               c.mem_per_kernel_cell % divisor == 0 &&
               c.alu_per_simple_cell % divisor == 0 &&
               c.mem_per_simple_cell % divisor == 0);
  s.alu_per_kernel_cell = c.alu_per_kernel_cell / divisor;
  s.mem_per_kernel_cell = c.mem_per_kernel_cell / divisor;
  s.alu_per_simple_cell = c.alu_per_simple_cell / divisor;
  s.mem_per_simple_cell = c.mem_per_simple_cell / divisor;
  return s;
}

}  // namespace

TestbedScenarios testbed_scenarios() {
  TestbedScenarios s;
  s.threat = threat::benchmark_scenarios();
  s.terrain = terrain::benchmark_geometries();
  // Scaled MTA workloads: one scenario each, reduced size (the per-unit
  // costs are reduced with the same mix in assemble_testbed).
  {
    threat::ScenarioParams params;
    params.num_threats = 256;
    params.num_weapons = 8;
    params.dt = 5.0;  // fewer steps per pair; per-step costs model the rest
    const auto seeds = c3i::standard_scenarios("threat-analysis");
    s.threat_scaled = threat::generate_scenario(seeds[0].seed, params);
  }
  {
    terrain::ScenarioParams params;
    params.x_size = 320;
    params.y_size = 320;
    params.num_threats = 60;
    const auto seeds = c3i::standard_scenarios("terrain-masking");
    s.terrain_scaled = terrain::generate_geometry(seeds[0].seed, params);
  }
  return s;
}

TestbedProfiles profile_testbed_kernels(const TestbedScenarios& scenarios) {
  TestbedProfiles p;
  for (const auto& scenario : scenarios.threat)
    p.threat.push_back(threat::profile(scenario));
  for (const auto& geometry : scenarios.terrain)
    p.terrain.push_back(terrain::profile(geometry));
  p.threat_scaled = threat::profile(scenarios.threat_scaled);
  p.terrain_scaled = terrain::profile(scenarios.terrain_scaled);
  return p;
}

Testbed assemble_testbed(TestbedProfiles profiles) {
  Testbed tb;
  tb.threat_costs = c3i::default_threat_costs();
  tb.terrain_costs = c3i::default_terrain_costs();
  tb.threat_profiles = std::move(profiles.threat);
  tb.terrain_profiles = std::move(profiles.terrain);
  tb.threat_profile_scaled = std::move(profiles.threat_scaled);
  tb.terrain_profile_scaled = std::move(profiles.terrain_scaled);

  // Reduced per-unit costs with the same mix (200:55 -> 40:11;
  // 80:26:10:6 -> 40:13:5:3).
  tb.threat_costs_scaled = scale_threat_costs(tb.threat_costs, 5);
  tb.terrain_costs_scaled = scale_terrain_costs(tb.terrain_costs, 2);

  double threat_full_instr = 0.0;
  for (const auto& p : tb.threat_profiles)
    threat_full_instr += threat_total_instructions(p, tb.threat_costs);
  tb.threat_mta_factor =
      threat_full_instr /
      threat_total_instructions(tb.threat_profile_scaled, tb.threat_costs_scaled);

  double terrain_full_instr = 0.0;
  for (const auto& p : tb.terrain_profiles)
    terrain_full_instr += terrain_total_instructions(p, tb.terrain_costs);
  tb.terrain_mta_factor =
      terrain_full_instr / terrain_total_instructions(tb.terrain_profile_scaled,
                                                      tb.terrain_costs_scaled);

  // Calibration totals (ops and bus bytes over all five scenarios), taken
  // from the same trace builders the simulations replay.
  for (const auto& p : tb.threat_profiles) {
    const sim::ThreadTrace t = threat::build_sequential_trace(p, tb.threat_costs);
    tb.totals.threat_ops += static_cast<double>(t.total_ops());
    tb.totals.threat_bytes += static_cast<double>(t.total_bytes());
  }
  for (const auto& p : tb.terrain_profiles) {
    const sim::ThreadTrace init = terrain::build_init_trace(p, tb.terrain_costs);
    const sim::ThreadTrace seq =
        terrain::build_sequential_trace(p, tb.terrain_costs);
    tb.totals.terrain_ops +=
        static_cast<double>(init.total_ops() + seq.total_ops());
    tb.totals.terrain_bytes +=
        static_cast<double>(init.total_bytes() + seq.total_bytes());
  }

  // Per-platform rate calibration from the paper's sequential anchors.
  const CalibratedRates alpha_rates = solve_rates(
      {paper::kThreatSeqAlpha, paper::kTerrainSeqAlpha}, tb.totals);
  const CalibratedRates ppro_rates =
      solve_rates({paper::kThreatSeqPPro, paper::kTerrainSeqPPro}, tb.totals);
  const CalibratedRates exemplar_rates = solve_rates(
      {paper::kThreatSeqExemplar, paper::kTerrainSeqExemplar}, tb.totals);
  tb.alpha = make_smp_config(alpha_spec(), alpha_rates.compute_rate_ips,
                             alpha_rates.mem_bw_single);
  tb.ppro = make_smp_config(ppro_spec(), ppro_rates.compute_rate_ips,
                            ppro_rates.mem_bw_single);
  tb.exemplar = make_smp_config(exemplar_spec(),
                                exemplar_rates.compute_rate_ips,
                                exemplar_rates.mem_bw_single);
  return tb;
}

Testbed build_testbed() {
  return assemble_testbed(profile_testbed_kernels(testbed_scenarios()));
}

// --- conventional-platform experiments --------------------------------------

double threat_seq_seconds(const Testbed& tb, const smp::SmpConfig& cfg) {
  const obs::ScopedScenarioLabel scenario_label("threat_seq");
  const smp::Machine machine(cfg);
  double total = 0.0;
  for (const auto& p : tb.threat_profiles)
    total += machine
                 .run_sequential(threat::build_sequential_trace(p, tb.threat_costs))
                 .elapsed;
  return total;
}

double threat_chunked_seconds(const Testbed& tb, const smp::SmpConfig& cfg,
                              int chunks, int processors) {
  const obs::ScopedScenarioLabel scenario_label("threat_chunked");
  smp::SmpConfig c = cfg;
  c.num_processors = processors;
  const smp::Machine machine(c);
  double total = 0.0;
  for (const auto& p : tb.threat_profiles)
    total += machine.run(threat::build_chunked_workload(p, chunks, tb.threat_costs))
                 .elapsed;
  return total;
}

double terrain_seq_seconds(const Testbed& tb, const smp::SmpConfig& cfg) {
  const obs::ScopedScenarioLabel scenario_label("terrain_seq");
  const smp::Machine machine(cfg);
  double total = 0.0;
  for (const auto& p : tb.terrain_profiles) {
    total += machine.run_sequential(terrain::build_init_trace(p, tb.terrain_costs))
                 .elapsed;
    total += machine
                 .run_sequential(terrain::build_sequential_trace(p, tb.terrain_costs))
                 .elapsed;
  }
  return total;
}

double terrain_coarse_seconds(const Testbed& tb, const smp::SmpConfig& cfg,
                              int workers, int processors,
                              int blocks_per_side) {
  const obs::ScopedScenarioLabel scenario_label("terrain_coarse");
  smp::SmpConfig c = cfg;
  c.num_processors = processors;
  const smp::Machine machine(c);
  double total = 0.0;
  for (const auto& p : tb.terrain_profiles) {
    // Initialization runs on the master before the workers spawn.
    total += machine.run_sequential(terrain::build_init_trace(p, tb.terrain_costs))
                 .elapsed;
    total += machine
                 .run_pool(terrain::build_coarse_pool(p, workers, blocks_per_side,
                                                      tb.terrain_costs))
                 .elapsed;
  }
  return total;
}

double terrain_coarse_static_seconds(const Testbed& tb,
                                     const smp::SmpConfig& cfg, int workers,
                                     int processors, int blocks_per_side) {
  const obs::ScopedScenarioLabel scenario_label("terrain_coarse_static");
  smp::SmpConfig c = cfg;
  c.num_processors = processors;
  const smp::Machine machine(c);
  double total = 0.0;
  for (const auto& p : tb.terrain_profiles) {
    total += machine.run_sequential(terrain::build_init_trace(p, tb.terrain_costs))
                 .elapsed;
    total += machine
                 .run(terrain::build_coarse_static(p, workers, blocks_per_side,
                                                   tb.terrain_costs))
                 .elapsed;
  }
  return total;
}

// --- Tera MTA experiments ----------------------------------------------------

namespace {

/// Runs one point on a scalar machine, byte-for-byte the pre-batched code
/// shape (the seconds functions below are often called from inside an
/// outer sim::run_sweep, so they must not start a nested sweep).
double run_point_scalar(const MtaPoint& p) {
  const obs::ScopedScenarioLabel scenario_label(p.batch.scenario);
  mta::Machine machine(p.batch.config);
  mta::ProgramPool pool;
  p.batch.build(machine, pool);
  return machine.run().seconds * p.seconds_factor;
}

}  // namespace

MtaPoint mta_threat_seq_point(const Testbed& tb) {
  MtaPoint p;
  p.batch.config = make_mta_config(1);
  p.batch.scenario = "threat_seq";
  p.batch.build = [&tb](mta::Machine& machine, mta::ProgramPool& pool) {
    threat::build_mta_sequential(pool, machine, tb.threat_profile_scaled,
                                 tb.threat_costs_scaled);
  };
  p.seconds_factor = tb.threat_mta_factor;
  return p;
}

MtaPoint mta_threat_chunked_point(const Testbed& tb, int chunks,
                                  int processors) {
  MtaPoint p;
  p.batch.config = make_mta_config(processors);
  p.batch.scenario = "threat_chunked";
  p.batch.build = [&tb, chunks](mta::Machine& machine,
                                mta::ProgramPool& pool) {
    threat::build_mta_chunked(pool, machine, tb.threat_profile_scaled,
                              static_cast<std::size_t>(chunks),
                              tb.threat_costs_scaled);
  };
  p.seconds_factor = tb.threat_mta_factor;
  return p;
}

MtaPoint mta_threat_finegrained_point(const Testbed& tb, int processors) {
  MtaPoint p;
  p.batch.config = make_mta_config(processors);
  p.batch.scenario = "threat_fine";
  p.batch.build = [&tb](mta::Machine& machine, mta::ProgramPool& pool) {
    threat::build_mta_finegrained(pool, machine, tb.threat_profile_scaled,
                                  tb.threat_costs_scaled);
  };
  p.seconds_factor = tb.threat_mta_factor;
  return p;
}

MtaPoint mta_terrain_seq_point(const Testbed& tb) {
  MtaPoint p;
  p.batch.config = make_mta_config(1);
  p.batch.scenario = "terrain_seq";
  p.batch.build = [&tb](mta::Machine& machine, mta::ProgramPool& pool) {
    terrain::build_mta_sequential(pool, machine, tb.terrain_profile_scaled,
                                  tb.terrain_costs_scaled);
  };
  p.seconds_factor = tb.terrain_mta_factor;
  return p;
}

MtaPoint mta_terrain_fine_point(const Testbed& tb, int processors) {
  return mta_terrain_fine_point(tb, processors, terrain::MtaFineParams{});
}

MtaPoint mta_terrain_fine_point(const Testbed& tb, int processors,
                                const terrain::MtaFineParams& params) {
  MtaPoint p;
  p.batch.config = make_mta_config(processors);
  p.batch.scenario = "terrain_fine";
  p.batch.build = [&tb, params](mta::Machine& machine,
                                mta::ProgramPool& pool) {
    terrain::build_mta_finegrained(pool, machine, tb.terrain_profile_scaled,
                                   tb.terrain_costs_scaled, params);
  };
  p.seconds_factor = tb.terrain_mta_factor;
  return p;
}

std::vector<double> run_mta_points(const std::vector<MtaPoint>& points,
                                   int lanes, int jobs, int run_threads) {
  if (run_threads > 1) {
    // Intra-run parallelism: each point's single simulation is partitioned
    // across run_threads host workers; --jobs still schedules whole points
    // concurrently on top.
    return sim::run_sweep(points.size(), jobs, [&](std::size_t i) {
      const MtaPoint& p = points[i];
      const obs::ScopedScenarioLabel scenario_label(p.batch.scenario);
      mta::Machine machine(p.batch.config);
      mta::ProgramPool pool;
      p.batch.build(machine, pool);
      return mta::run_partitioned(machine, run_threads).seconds *
             p.seconds_factor;
    });
  }
  std::vector<mta::BatchPoint> batch;
  batch.reserve(points.size());
  for (const MtaPoint& p : points) batch.push_back(p.batch);
  const std::vector<mta::MtaRunResult> results =
      mta::run_batched_sweep(batch, lanes, jobs);
  std::vector<double> seconds(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    seconds[i] = results[i].seconds * points[i].seconds_factor;
  return seconds;
}

double mta_threat_seq_seconds(const Testbed& tb) {
  return run_point_scalar(mta_threat_seq_point(tb));
}

double mta_threat_chunked_seconds(const Testbed& tb, int chunks,
                                  int processors) {
  return run_point_scalar(mta_threat_chunked_point(tb, chunks, processors));
}

double mta_threat_finegrained_seconds(const Testbed& tb, int processors) {
  return run_point_scalar(mta_threat_finegrained_point(tb, processors));
}

double mta_terrain_seq_seconds(const Testbed& tb) {
  return run_point_scalar(mta_terrain_seq_point(tb));
}

double mta_terrain_fine_seconds(const Testbed& tb, int processors) {
  return mta_terrain_fine_seconds(tb, processors,
                                  c3i::terrain::MtaFineParams{});
}

double mta_terrain_fine_seconds(const Testbed& tb, int processors,
                                const terrain::MtaFineParams& params) {
  return run_point_scalar(mta_terrain_fine_point(tb, processors, params));
}

}  // namespace tc3i::platforms
