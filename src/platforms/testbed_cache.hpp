// Disk cache for the testbed's kernel-profiling stage.
//
// build_testbed() spends nearly all of its time running the instrumented
// C3I kernels (threat pair scans, terrain ring clipping) to produce the
// workload profiles; every bench binary pays that cost on startup even
// though the profiles are a pure function of the generated scenarios.
// load_or_build_testbed() persists the profiles in a small binary file
// keyed by a fingerprint of the scenario contents (plus a format version),
// so repeat runs assemble the testbed in milliseconds. A stale or corrupt
// cache file — fingerprint mismatch, short read, wrong magic — is ignored
// and rewritten; the cache can never change results, only skip recompute.
//
// Cache location: $TC3I_TESTBED_CACHE names the directory. Unset, it
// defaults to the system temp directory; set to "0" or "off", caching is
// disabled entirely (every call profiles the kernels afresh).
#pragma once

#include "platforms/experiment.hpp"

namespace tc3i::platforms {

/// build_testbed() with the kernel-profiling stage served from (and saved
/// to) the on-disk cache when possible. Always returns an identical
/// Testbed to build_testbed().
[[nodiscard]] Testbed load_or_build_testbed();

}  // namespace tc3i::platforms
