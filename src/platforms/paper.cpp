// Paper reference numbers are header-only; translation unit kept so the
// target has an object for this component.
#include "platforms/paper.hpp"
