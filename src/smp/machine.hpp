// Fluid discrete-event model of a conventional shared-memory multiprocessor.
//
// Threads progress through their trace phases concurrently:
//   - compute drains at the per-processor rate (shared fairly when there are
//     more runnable threads than processors),
//   - memory traffic drains through the shared bus, divided max-min fairly
//     among the threads currently in a memory stage (a single thread is
//     additionally capped by its own front-end draw limit),
//   - locks serialize: an acquire on a held lock blocks the thread in FIFO
//     order until release,
//   - spawning threads is serialized at the master and costs
//     `thread_spawn_cycles` each, matching OS-thread behaviour of the era.
//
// The model is deterministic and runs in O(events * threads).
#pragma once

#include <vector>

#include "core/units.hpp"
#include "obs/counters.hpp"
#include "obs/critpath.hpp"
#include "sim/trace.hpp"
#include "smp/config.hpp"
#include "smp/workload.hpp"

namespace tc3i::obs {
class TraceSink;
class RunRecordStore;
class TimelineStore;
}  // namespace tc3i::obs

namespace tc3i::smp {

/// Instrumentation hooks shared by Machine and its internal engine:
/// always-on counters ("smp." prefix in obs::default_registry()) plus the
/// optional trace sink captured from obs::global_sink() at construction.
struct ObsHooks {
  obs::Counter* runs = nullptr;
  obs::Counter* threads_spawned = nullptr;
  obs::Counter* threads_finished = nullptr;
  obs::Counter* lock_acquires = nullptr;
  obs::Counter* lock_contended = nullptr;
  obs::Counter* lock_releases = nullptr;
  obs::Counter* ops_executed = nullptr;
  obs::Counter* bytes_transferred = nullptr;
  obs::Histogram* run_elapsed_seconds = nullptr;
  obs::Histogram* lock_wait_seconds = nullptr;
  obs::Gauge* last_bus_utilization = nullptr;
  obs::TraceSink* sink = nullptr;
  obs::RunRecordStore* records = nullptr;  ///< active_run_records() at ctor
  obs::TimelineStore* timeline = nullptr;  ///< active_timeline() at ctor
  obs::CritPathStore* critpath = nullptr;  ///< active_critpath() at ctor
  std::uint32_t pid = 0;
};

/// One piecewise-constant interval of machine activity (recorded when
/// SmpConfig::record_timeline is set).
struct TimelineSample {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  int running_threads = 0;
  int blocked_threads = 0;
  /// Instantaneous bus usage as a fraction of mem_bw_total.
  double bus_fraction = 0.0;
};

struct RunResult {
  Seconds elapsed = 0.0;
  Instructions ops_executed = 0;
  Bytes bytes_transferred = 0;
  /// Fraction of the run during which the bus was saturated-equivalent:
  /// bytes_transferred / (elapsed * mem_bw_total).
  double bus_utilization = 0.0;
  /// Total time threads spent blocked on locks, summed over threads.
  Seconds lock_wait_total = 0.0;
  /// Per-thread busy time (computing or moving memory).
  std::vector<Seconds> thread_busy;
  /// Per-thread completion time.
  std::vector<Seconds> thread_finish;
  /// Piecewise-constant activity record (empty unless
  /// SmpConfig::record_timeline).
  std::vector<TimelineSample> timeline;
};

class Machine {
 public:
  explicit Machine(SmpConfig config);

  [[nodiscard]] const SmpConfig& config() const { return config_; }

  /// Runs a single-threaded trace with no threading overheads
  /// (the paper's "sequential execution without parallelization").
  [[nodiscard]] RunResult run_sequential(const sim::ThreadTrace& trace) const;

  /// Runs a statically partitioned multithreaded workload.
  [[nodiscard]] RunResult run(const sim::WorkloadTrace& workload) const;

  /// Runs a dynamically scheduled task pool.
  [[nodiscard]] RunResult run_pool(const PoolWorkload& workload) const;

 private:
  SmpConfig config_;
  ObsHooks obs_;
};

}  // namespace tc3i::smp
