#include "smp/machine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <utility>

#include "core/contracts.hpp"
#include "obs/run_record.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_sink.hpp"
#include "sim/fluid.hpp"

namespace tc3i::smp {

namespace {

using sim::Phase;
using sim::ThreadTrace;

// A timed or instantaneous unit of worker progress. Compute phases expand to
// Cpu (ops) then Mem (bytes); lock phases expand to Overhead + Grab/Release.
struct Job {
  enum class Kind : std::uint8_t { Sleep, Overhead, Cpu, Mem, Grab, Release };
  Kind kind = Kind::Sleep;
  double amount = 0.0;  ///< seconds (Sleep/Overhead), ops (Cpu), bytes (Mem)
  int lock_id = -1;
  /// Contention-free duration in seconds (amount at the sole-owner rate),
  /// recorded at creation for dependency-graph capture: the scalable edge
  /// weight; any extra elapsed time is the fixed contention remainder.
  double ideal = 0.0;
};

struct Worker {
  std::deque<Job> jobs;
  const std::vector<Phase>* phases = nullptr;
  std::size_t phase_idx = 0;

  enum class Status : std::uint8_t { Run, Blocked, Done };
  Status status = Status::Run;

  Seconds busy = 0.0;
  Seconds lock_wait = 0.0;
  Seconds finish = 0.0;
};

struct LockState {
  int owner = -1;
  std::deque<int> waiters;
};

class Engine {
 public:
  Engine(const SmpConfig& cfg, const ObsHooks& obs, int num_workers,
         int num_locks, const std::vector<ThreadTrace>* pool_tasks)
      : cfg_(cfg),
        obs_(obs),
        workers_(static_cast<std::size_t>(num_workers)),
        locks_(static_cast<std::size_t>(num_locks)),
        pool_(pool_tasks) {
    if (obs_.critpath != nullptr) {
      cap_graph_ = std::make_unique<obs::DepGraph>();
      cap_graph_->model = "smp";
      cap_graph_->name = cfg_.name.empty() ? "smp" : cfg_.name;
      cap_graph_->unit = "seconds";
      cap_graph_->add_node(0.0);  // node 0: run start, every worker's root
      cap_workers_.assign(workers_.size(), CapWorker{});
      cap_ = cap_graph_.get();
    }
  }

  /// Assigns a fixed trace to worker `i` (static partitioning).
  void assign(int i, const ThreadTrace& trace) {
    workers_[static_cast<std::size_t>(i)].phases = &trace.phases();
  }

  /// Adds the serialized master-spawn stagger before each worker starts.
  void add_spawn_stagger() {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const double delay =
          cfg_.spawn_seconds() * static_cast<double>(i + 1);
      if (delay > 0.0)
        workers_[i].jobs.push_front(Job{Job::Kind::Sleep, delay, -1, delay});
      obs_.threads_spawned->add();
      if (obs_.sink != nullptr)
        obs_.sink->instant(obs::Category::Spawn, "thread_spawn", delay * 1e6,
                           obs_.pid, i);
    }
  }

  RunResult run();

 private:
  static constexpr double kDoneEps = 1e-12;

  void expand_phase(Worker& w, const Phase& p) {
    switch (p.kind) {
      case Phase::Kind::Compute:
        if (p.ops > 0)
          w.jobs.push_back(Job{Job::Kind::Cpu, static_cast<double>(p.ops), -1,
                               static_cast<double>(p.ops) /
                                   cfg_.compute_rate_ips});
        if (p.bytes > 0)
          w.jobs.push_back(
              Job{Job::Kind::Mem, static_cast<double>(p.bytes), -1,
                  static_cast<double>(p.bytes) / cfg_.mem_bw_single});
        break;
      case Phase::Kind::Acquire:
        if (cfg_.lock_seconds() > 0.0)
          w.jobs.push_back(Job{Job::Kind::Overhead, cfg_.lock_seconds(), -1,
                               cfg_.lock_seconds()});
        w.jobs.push_back(Job{Job::Kind::Grab, 0.0, p.lock_id});
        break;
      case Phase::Kind::Release:
        w.jobs.push_back(Job{Job::Kind::Release, 0.0, p.lock_id});
        break;
    }
  }

  /// Refills the worker's job queue from its phase list or the task pool.
  /// Marks the worker Done when no work remains.
  void refill(Worker& w, Seconds now) {
    while (w.jobs.empty()) {
      if (w.phases != nullptr && w.phase_idx < w.phases->size()) {
        expand_phase(w, (*w.phases)[w.phase_idx++]);
        continue;
      }
      if (pool_ != nullptr && next_task_ < pool_->size()) {
        w.phases = &(*pool_)[next_task_++].phases();
        w.phase_idx = 0;
        // Pulling from the shared queue costs one lock round-trip.
        if (cfg_.lock_seconds() > 0.0)
          w.jobs.push_back(Job{Job::Kind::Overhead, cfg_.lock_seconds(), -1,
                               cfg_.lock_seconds()});
        continue;
      }
      w.status = Worker::Status::Done;
      w.finish = now;
      return;
    }
  }

  /// Advances the worker past instantaneous jobs until it has a timed job,
  /// blocks, or finishes. May wake other workers (lock hand-off).
  void settle(int wi, Seconds now) {
    std::deque<int> work{wi};
    while (!work.empty()) {
      const int idx = work.front();
      work.pop_front();
      Worker& w = workers_[static_cast<std::size_t>(idx)];
      while (w.status == Worker::Status::Run) {
        if (w.jobs.empty()) {
          refill(w, now);
          if (w.status == Worker::Status::Done) {
            obs_.threads_finished->add();
            if (obs_.sink != nullptr)
              obs_.sink->end(obs::Category::Sched, "worker", now * 1e6,
                             obs_.pid, static_cast<std::uint64_t>(idx));
            break;
          }
        }
        Job& job = w.jobs.front();
        switch (job.kind) {
          case Job::Kind::Sleep:
          case Job::Kind::Overhead:
          case Job::Kind::Cpu:
          case Job::Kind::Mem:
            if (job.amount > kDoneEps) goto settled;
            if (cap_ != nullptr) cap_job_done(idx, job, now);
            w.jobs.pop_front();
            break;
          case Job::Kind::Grab: {
            LockState& lk = locks_[static_cast<std::size_t>(job.lock_id)];
            if (lk.owner < 0) {
              lk.owner = idx;
              obs_.lock_acquires->add();
              if (obs_.sink != nullptr)
                obs_.sink->instant(obs::Category::Sync, "lock_acquire",
                                   now * 1e6, obs_.pid,
                                   static_cast<std::uint64_t>(idx));
              w.jobs.pop_front();
            } else {
              lk.waiters.push_back(idx);
              w.status = Worker::Status::Blocked;
              obs_.lock_contended->add();
              if (obs_.sink != nullptr)
                obs_.sink->begin(obs::Category::Sync, "lock_wait", now * 1e6,
                                 obs_.pid, static_cast<std::uint64_t>(idx));
            }
            break;
          }
          case Job::Kind::Release: {
            LockState& lk = locks_[static_cast<std::size_t>(job.lock_id)];
            TC3I_ASSERT(lk.owner == idx);
            w.jobs.pop_front();
            obs_.lock_releases->add();
            if (obs_.sink != nullptr)
              obs_.sink->instant(obs::Category::Sync, "lock_release",
                                 now * 1e6, obs_.pid,
                                 static_cast<std::uint64_t>(idx));
            if (lk.waiters.empty()) {
              lk.owner = -1;
            } else {
              const int next = lk.waiters.front();
              lk.waiters.pop_front();
              lk.owner = next;
              Worker& nw = workers_[static_cast<std::size_t>(next)];
              TC3I_ASSERT(nw.status == Worker::Status::Blocked);
              TC3I_ASSERT(!nw.jobs.empty() &&
                          nw.jobs.front().kind == Job::Kind::Grab);
              nw.jobs.pop_front();
              nw.status = Worker::Status::Run;
              obs_.lock_acquires->add();
              if (obs_.sink != nullptr) {
                obs_.sink->end(obs::Category::Sync, "lock_wait", now * 1e6,
                               obs_.pid, static_cast<std::uint64_t>(next));
                obs_.sink->instant(obs::Category::Sync, "lock_acquire",
                                   now * 1e6, obs_.pid,
                                   static_cast<std::uint64_t>(next));
              }
              if (cap_ != nullptr) {
                // Lock hand-off: the waiter resumes no earlier than the
                // release (the serialization a convoy's critical path runs
                // through) and never before its own blocked attempt.
                CapWorker& nc = cap_workers_[static_cast<std::size_t>(next)];
                const std::uint32_t r = cap_->add_node(now);
                cap_->add_edge(cap_workers_[static_cast<std::size_t>(idx)].node,
                               obs::DepKind::kSync, obs::DepKind::kSync, 0.0);
                cap_->add_edge(nc.node, obs::DepKind::kSync,
                               obs::DepKind::kSync, 0.0);
                nc = CapWorker{r, now};
              }
              work.push_back(next);
            }
            break;
          }
        }
      }
    settled:;
    }
  }

  /// Resamples the piecewise-constant activity record onto the timeline
  /// store's fixed simulated-cycle grid (seconds -> cycles via clock_hz) so
  /// SMP timelines line up with MTA ones and are --jobs-independent.
  void export_timeline(const std::vector<TimelineSample>& samples,
                       Seconds elapsed);

  // --- Dependency-graph capture (cap_ != nullptr iff capturing). Each
  // worker carries a chain node; a timed job's completion appends a node
  // whose edge splits into the job's contention-free ideal duration
  // (scalable by the matching what-if knob) and the contention remainder
  // (fixed, bucket "queue"). Lock hand-offs add a release -> resume edge,
  // so convoys serialize through the graph just as they do in the engine.

  struct CapWorker {
    std::uint32_t node = 0;  ///< last node on the worker's chain
    double time = 0.0;       ///< recorded time of that node
  };
  /// Appends the completion node of a timed job for worker `wi`.
  void cap_job_done(int wi, const Job& job, Seconds now) {
    obs::DepKind kind = obs::DepKind::kCompute;
    switch (job.kind) {
      case Job::Kind::Sleep: kind = obs::DepKind::kSpawn; break;
      case Job::Kind::Overhead: kind = obs::DepKind::kSync; break;
      case Job::Kind::Cpu: kind = obs::DepKind::kCompute; break;
      case Job::Kind::Mem: kind = obs::DepKind::kMemory; break;
      case Job::Kind::Grab:
      case Job::Kind::Release: return;  // instantaneous, no node
    }
    CapWorker& cw = cap_workers_[static_cast<std::size_t>(wi)];
    const std::uint32_t n = cap_->add_node(now);
    cap_->add_edge(cw.node, kind, kind, job.ideal,
                   std::max(0.0, (now - cw.time) - job.ideal));
    cw = CapWorker{n, now};
  }

  const SmpConfig& cfg_;
  const ObsHooks& obs_;
  std::vector<Worker> workers_;
  std::vector<LockState> locks_;
  const std::vector<ThreadTrace>* pool_ = nullptr;
  std::size_t next_task_ = 0;
  std::unique_ptr<obs::DepGraph> cap_graph_;
  obs::DepGraph* cap_ = nullptr;  ///< cap_graph_.get() iff capturing
  std::vector<CapWorker> cap_workers_;
};

void Engine::export_timeline(const std::vector<TimelineSample>& samples,
                             Seconds elapsed) {
  const std::uint64_t period = obs_.timeline->sample_period_cycles();
  const double cps = cfg_.clock_hz;
  const auto total_cycles =
      static_cast<std::uint64_t>(std::llround(elapsed * cps));
  const std::size_t buckets =
      static_cast<std::size_t>(total_cycles / period) +
      (total_cycles % period != 0 ? 1 : 0);
  std::vector<double> bus(buckets, 0.0);
  std::vector<double> running(buckets, 0.0);
  std::vector<double> blocked(buckets, 0.0);
  for (const TimelineSample& s : samples) {
    const double c0 = s.start * cps;
    const double c1 =
        std::min((s.start + s.duration) * cps, static_cast<double>(total_cycles));
    if (c1 <= c0) continue;
    auto k = static_cast<std::size_t>(c0 / static_cast<double>(period));
    for (; k < buckets; ++k) {
      const double lo =
          std::max(c0, static_cast<double>(k) * static_cast<double>(period));
      const double hi = std::min(
          c1, static_cast<double>(k + 1) * static_cast<double>(period));
      if (hi <= lo) break;
      bus[k] += (hi - lo) * s.bus_fraction;
      running[k] += (hi - lo) * static_cast<double>(s.running_threads);
      blocked[k] += (hi - lo) * static_cast<double>(s.blocked_threads);
    }
  }
  obs::MachineTimeline tl;
  tl.model = "smp";
  tl.name = cfg_.name.empty() ? "smp" : cfg_.name;
  tl.sample_period_cycles = period;
  obs::TimelineSeries bus_s{"bus_occupancy", {}};
  obs::TimelineSeries run_s{"running_threads", {}};
  obs::TimelineSeries blk_s{"blocked_threads", {}};
  for (std::size_t k = 0; k < buckets; ++k) {
    const std::uint64_t end =
        std::min((static_cast<std::uint64_t>(k) + 1) * period, total_cycles);
    const auto width =
        static_cast<double>(end - static_cast<std::uint64_t>(k) * period);
    bus_s.points.push_back({end, bus[k] / width});
    run_s.points.push_back({end, running[k] / width});
    blk_s.points.push_back({end, blocked[k] / width});
  }
  tl.series.push_back(std::move(bus_s));
  tl.series.push_back(std::move(run_s));
  tl.series.push_back(std::move(blk_s));
  obs_.timeline->add(std::move(tl));
}

RunResult Engine::run() {
  Seconds now = 0.0;
  double ops_done = 0.0;
  double bytes_done = 0.0;
  std::vector<TimelineSample> timeline;

  if (obs_.sink != nullptr)
    for (std::size_t i = 0; i < workers_.size(); ++i)
      obs_.sink->begin(obs::Category::Sched, "worker", 0.0, obs_.pid, i);

  for (std::size_t i = 0; i < workers_.size(); ++i)
    settle(static_cast<int>(i), now);

  std::vector<double> mem_caps;
  std::vector<int> mem_workers;
  std::vector<double> rates(workers_.size(), 0.0);

  for (;;) {
    // Count running workers and collect the memory-stage demanders.
    int running = 0;
    int done = 0;
    mem_caps.clear();
    mem_workers.clear();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = workers_[i];
      if (w.status == Worker::Status::Done) {
        ++done;
      } else if (w.status == Worker::Status::Run) {
        ++running;
        TC3I_ASSERT(!w.jobs.empty());
        if (w.jobs.front().kind == Job::Kind::Mem) {
          mem_workers.push_back(static_cast<int>(i));
          mem_caps.push_back(cfg_.mem_bw_single);
        }
      }
    }
    if (done == static_cast<int>(workers_.size())) break;
    TC3I_ASSERT(running > 0 && "deadlock: all unfinished workers blocked");

    const double cpu_share =
        std::min(1.0, static_cast<double>(cfg_.num_processors) /
                          static_cast<double>(running));
    const std::vector<double> mem_rates =
        sim::water_fill(cfg_.mem_bw_total, mem_caps);

    // Per-worker progress rate in its current job's unit.
    std::size_t mem_cursor = 0;
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      rates[i] = 0.0;
      if (w.status != Worker::Status::Run) continue;
      const Job& job = w.jobs.front();
      switch (job.kind) {
        case Job::Kind::Sleep:
          rates[i] = 1.0;
          break;
        case Job::Kind::Overhead:
          rates[i] = cpu_share;
          break;
        case Job::Kind::Cpu:
          rates[i] = cfg_.compute_rate_ips * cpu_share;
          break;
        case Job::Kind::Mem:
          rates[i] = mem_rates[mem_cursor++];
          break;
        default:
          TC3I_ASSERT(false && "instantaneous job survived settle()");
      }
      TC3I_ASSERT(rates[i] > 0.0);
      dt = std::min(dt, job.amount / rates[i]);
    }
    TC3I_ASSERT(std::isfinite(dt));

    if (cfg_.record_timeline || obs_.sink != nullptr ||
        obs_.timeline != nullptr) {
      TimelineSample sample;
      sample.start = now;
      sample.duration = dt;
      double bus_rate = 0.0;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker& w = workers_[i];
        if (w.status == Worker::Status::Blocked) {
          ++sample.blocked_threads;
        } else if (w.status == Worker::Status::Run) {
          ++sample.running_threads;
          if (w.jobs.front().kind == Job::Kind::Mem) bus_rate += rates[i];
        }
      }
      sample.bus_fraction = bus_rate / cfg_.mem_bw_total;
      if (obs_.sink != nullptr) {
        obs_.sink->counter(obs::Category::Memory, "bus_fraction", now * 1e6,
                           obs_.pid, sample.bus_fraction);
        obs_.sink->counter(obs::Category::Sched, "running_threads", now * 1e6,
                           obs_.pid,
                           static_cast<double>(sample.running_threads));
      }
      if (cfg_.record_timeline || obs_.timeline != nullptr)
        timeline.push_back(sample);
    }

    // Advance everything by dt; jobs whose completion defined dt snap to 0.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (w.status == Worker::Status::Blocked) {
        w.lock_wait += dt;
        continue;
      }
      if (w.status != Worker::Status::Run) continue;
      Job& job = w.jobs.front();
      const double progress = rates[i] * dt;
      if (job.kind == Job::Kind::Cpu) ops_done += progress;
      if (job.kind == Job::Kind::Mem) bytes_done += progress;
      if (job.kind != Job::Kind::Sleep) w.busy += dt;
      if (job.amount <= progress * (1.0 + 1e-12))
        job.amount = 0.0;
      else
        job.amount -= progress;
    }
    now += dt;

    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (w.status == Worker::Status::Run && w.jobs.front().amount <= kDoneEps)
        settle(static_cast<int>(i), now);
    }
  }

  RunResult result;
  result.elapsed = now;
  result.ops_executed = static_cast<Instructions>(ops_done + 0.5);
  result.bytes_transferred = static_cast<Bytes>(bytes_done + 0.5);
  result.bus_utilization =
      (now > 0.0) ? bytes_done / (now * cfg_.mem_bw_total) : 0.0;
  for (const Worker& w : workers_) {
    result.lock_wait_total += w.lock_wait;
    result.thread_busy.push_back(w.busy);
    result.thread_finish.push_back(w.finish);
  }
  if (obs_.timeline != nullptr) export_timeline(timeline, now);
  if (cfg_.record_timeline) result.timeline = std::move(timeline);

  obs::CritPathSummary cap_summary;
  if (cap_ != nullptr) {
    // Run-end node joins every worker's chain; throughput bounds are the
    // machine's aggregate compute and bus service times (both scale with
    // their knob: halving the compute rate or the bus bandwidth doubles
    // the corresponding bound).
    const std::uint32_t end = cap_->add_node(now);
    for (const CapWorker& cw : cap_workers_)
      cap_->add_edge(cw.node, obs::DepKind::kCompute, obs::DepKind::kCompute,
                     0.0);
    cap_->end_node = end;
    cap_->total = now;
    cap_->resources.push_back(obs::DepResource{
        "cpu", obs::DepKind::kCompute, true,
        ops_done / (cfg_.compute_rate_ips *
                    static_cast<double>(cfg_.num_processors))});
    cap_->resources.push_back(obs::DepResource{
        "bus", obs::DepKind::kMemory, true, bytes_done / cfg_.mem_bw_total});
    cap_summary = obs::summarize(*cap_);
  }

  if (obs_.records != nullptr) {
    obs::RunRecord rec;
    rec.model = "smp";
    rec.name = cfg_.name.empty() ? "smp" : cfg_.name;
    rec.processors = cfg_.num_processors;
    rec.threads = workers_.size();
    rec.elapsed_seconds = now;
    rec.bus_utilization = result.bus_utilization;
    const double capacity =
        now * cfg_.compute_rate_ips * static_cast<double>(cfg_.num_processors);
    rec.utilization = capacity > 0.0 ? ops_done / capacity : 0.0;
    rec.lock_wait_share =
        now > 0.0 ? result.lock_wait_total /
                        (now * static_cast<double>(cfg_.num_processors))
                  : 0.0;
    rec.critical_path = cap_summary;
    obs_.records->add(std::move(rec));
  }
  if (cap_ != nullptr) {
    obs_.critpath->add(std::move(*cap_graph_));
    cap_graph_.reset();
    cap_ = nullptr;
  }

  obs_.ops_executed->add(result.ops_executed);
  obs_.bytes_transferred->add(result.bytes_transferred);
  obs_.run_elapsed_seconds->record(result.elapsed);
  obs_.lock_wait_seconds->record(result.lock_wait_total);
  obs_.last_bus_utilization->set(result.bus_utilization);
  return result;
}

}  // namespace

Machine::Machine(SmpConfig config) : config_(std::move(config)) {
  const std::string err = config_.validate();
  if (!err.empty())
    contract_failure("SmpConfig", err.c_str(), __FILE__, __LINE__);

  obs::CounterRegistry& reg = obs::default_registry();
  obs_.runs = &reg.counter("smp.runs");
  obs_.threads_spawned = &reg.counter("smp.threads.spawned");
  obs_.threads_finished = &reg.counter("smp.threads.finished");
  obs_.lock_acquires = &reg.counter("smp.lock.acquires");
  obs_.lock_contended = &reg.counter("smp.lock.contended");
  obs_.lock_releases = &reg.counter("smp.lock.releases");
  obs_.ops_executed = &reg.counter("smp.ops_executed");
  obs_.bytes_transferred = &reg.counter("smp.bytes_transferred");
  obs_.run_elapsed_seconds = &reg.histogram("smp.run.elapsed_seconds");
  obs_.lock_wait_seconds = &reg.histogram("smp.run.lock_wait_seconds");
  obs_.last_bus_utilization = &reg.gauge("smp.last.bus_utilization");
  obs_.sink = obs::global_sink();
  obs_.records = obs::active_run_records();
  obs_.timeline = obs::active_timeline();
  obs_.critpath = obs::active_critpath();
  if (obs_.sink != nullptr)
    obs_.pid = obs_.sink->register_track(
        config_.name.empty() ? "smp" : config_.name);
}

RunResult Machine::run_sequential(const sim::ThreadTrace& trace) const {
  obs_.runs->add();
  Engine engine(config_, obs_, 1, 0, nullptr);
  engine.assign(0, trace);
  return engine.run();
}

RunResult Machine::run(const sim::WorkloadTrace& workload) const {
  const std::string err = workload.validate();
  if (!err.empty())
    contract_failure("WorkloadTrace", err.c_str(), __FILE__, __LINE__);
  TC3I_EXPECTS(!workload.threads.empty());
  obs_.runs->add();
  Engine engine(config_, obs_, static_cast<int>(workload.threads.size()),
                workload.num_locks, nullptr);
  for (std::size_t i = 0; i < workload.threads.size(); ++i)
    engine.assign(static_cast<int>(i), workload.threads[i]);
  engine.add_spawn_stagger();
  return engine.run();
}

RunResult Machine::run_pool(const PoolWorkload& workload) const {
  const std::string err = workload.validate();
  if (!err.empty())
    contract_failure("PoolWorkload", err.c_str(), __FILE__, __LINE__);
  obs_.runs->add();
  Engine engine(config_, obs_, workload.num_workers, workload.num_locks,
                &workload.tasks);
  engine.add_spawn_stagger();
  return engine.run();
}

}  // namespace tc3i::smp
