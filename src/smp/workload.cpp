#include "smp/workload.hpp"

#include <sstream>

namespace tc3i::smp {

Instructions PoolWorkload::total_ops() const {
  Instructions total = 0;
  for (const auto& t : tasks) total += t.total_ops();
  return total;
}

Bytes PoolWorkload::total_bytes() const {
  Bytes total = 0;
  for (const auto& t : tasks) total += t.total_bytes();
  return total;
}

std::string PoolWorkload::validate() const {
  if (num_workers < 1) return "num_workers < 1";
  sim::WorkloadTrace as_trace;
  as_trace.threads = tasks;  // each task must be individually well-formed
  as_trace.num_locks = num_locks;
  std::string err = as_trace.validate();
  if (!err.empty()) {
    std::ostringstream os;
    os << "task pool: " << err;
    return os.str();
  }
  return {};
}

}  // namespace tc3i::smp
