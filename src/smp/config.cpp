#include "smp/config.hpp"

#include <sstream>

namespace tc3i::smp {

std::string SmpConfig::validate() const {
  std::ostringstream os;
  if (name.empty()) os << "name is empty; ";
  if (num_processors < 1) os << "num_processors < 1; ";
  if (clock_hz <= 0.0) os << "clock_hz <= 0; ";
  if (compute_rate_ips <= 0.0) os << "compute_rate_ips <= 0; ";
  if (mem_bw_single <= 0.0) os << "mem_bw_single <= 0; ";
  if (mem_bw_total < mem_bw_single)
    os << "mem_bw_total < mem_bw_single (the bus cannot be slower than one "
          "processor's draw); ";
  if (thread_spawn_cycles < 0.0) os << "thread_spawn_cycles < 0; ";
  if (lock_cycles < 0.0) os << "lock_cycles < 0; ";
  return os.str();
}

}  // namespace tc3i::smp
