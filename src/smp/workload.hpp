// Workload forms accepted by the SMP machine model.
//
// Static: one trace per thread (the paper's Program 2 chunking — each thread
// owns a fixed chunk). Dynamic: a shared pool of task traces pulled by a
// fixed number of workers (the paper's Program 4 — "while (unprocessed
// threats) { threat = next unprocessed threat; ... }").
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace tc3i::smp {

struct PoolWorkload {
  /// Each task is an independent piece of work (e.g. one threat's masking).
  std::vector<sim::ThreadTrace> tasks;
  int num_workers = 1;
  int num_locks = 0;

  [[nodiscard]] Instructions total_ops() const;
  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] std::string validate() const;
};

}  // namespace tc3i::smp
