// Configuration of a conventional shared-memory multiprocessor model.
//
// The model captures exactly the machine characteristics the paper's
// conventional-platform results depend on:
//   - an effective per-processor compute rate (instructions/second, folding
//     clock speed, issue width and pipeline efficiency into one calibrated
//     number),
//   - a memory system with a per-processor draw limit and a total shared-bus
//     limit (the ratio of the two bounds the speedup of memory-bound
//     programs such as Terrain Masking),
//   - OS-level thread and lock costs, which the paper contrasts with the
//     Tera MTA's few-cycle equivalents.
#pragma once

#include <string>

#include "core/units.hpp"

namespace tc3i::smp {

struct SmpConfig {
  std::string name;

  int num_processors = 1;
  double clock_hz = 0.0;

  /// Effective sequential compute rate of one processor (abstract
  /// instructions per second). Calibrated from the paper's sequential rows.
  double compute_rate_ips = 0.0;

  /// Bytes/second a single processor can draw from memory.
  double mem_bw_single = 0.0;

  /// Total bytes/second the shared bus sustains across all processors.
  /// mem_bw_total / mem_bw_single bounds memory-bound speedup.
  double mem_bw_total = 0.0;

  /// OS thread creation cost ("tens of thousands to hundreds of thousands
  /// of cycles" on conventional platforms, per the paper).
  Cycles thread_spawn_cycles = 50'000.0;

  /// Lock acquire/release overhead ("hundreds to thousands of cycles").
  Cycles lock_cycles = 400.0;

  /// When true, runs record a piecewise-constant activity timeline
  /// (RunResult::timeline) for visualization.
  bool record_timeline = false;

  [[nodiscard]] Seconds spawn_seconds() const {
    return thread_spawn_cycles / clock_hz;
  }
  [[nodiscard]] Seconds lock_seconds() const { return lock_cycles / clock_hz; }

  /// Checks the configuration is physically sensible. Returns an empty
  /// string when valid, else a description of the defect.
  [[nodiscard]] std::string validate() const;
};

}  // namespace tc3i::smp
