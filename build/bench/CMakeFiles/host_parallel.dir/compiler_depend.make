# Empty compiler generated dependencies file for host_parallel.
# This may be replaced when dependencies are built.
