file(REMOVE_RECURSE
  "CMakeFiles/host_parallel.dir/host_parallel.cpp.o"
  "CMakeFiles/host_parallel.dir/host_parallel.cpp.o.d"
  "host_parallel"
  "host_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
