# Empty compiler generated dependencies file for ablate_mta_latency.
# This may be replaced when dependencies are built.
