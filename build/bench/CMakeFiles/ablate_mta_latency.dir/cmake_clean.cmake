file(REMOVE_RECURSE
  "CMakeFiles/ablate_mta_latency.dir/ablate_mta_latency.cpp.o"
  "CMakeFiles/ablate_mta_latency.dir/ablate_mta_latency.cpp.o.d"
  "ablate_mta_latency"
  "ablate_mta_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mta_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
