# Empty compiler generated dependencies file for table03_fig1_threat_ppro.
# This may be replaced when dependencies are built.
