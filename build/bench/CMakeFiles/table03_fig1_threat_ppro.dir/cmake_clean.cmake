file(REMOVE_RECURSE
  "CMakeFiles/table03_fig1_threat_ppro.dir/table03_fig1_threat_ppro.cpp.o"
  "CMakeFiles/table03_fig1_threat_ppro.dir/table03_fig1_threat_ppro.cpp.o.d"
  "table03_fig1_threat_ppro"
  "table03_fig1_threat_ppro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_fig1_threat_ppro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
