# Empty compiler generated dependencies file for ablate_terrain_pipelines.
# This may be replaced when dependencies are built.
