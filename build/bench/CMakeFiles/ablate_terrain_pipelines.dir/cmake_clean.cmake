file(REMOVE_RECURSE
  "CMakeFiles/ablate_terrain_pipelines.dir/ablate_terrain_pipelines.cpp.o"
  "CMakeFiles/ablate_terrain_pipelines.dir/ablate_terrain_pipelines.cpp.o.d"
  "ablate_terrain_pipelines"
  "ablate_terrain_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_terrain_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
