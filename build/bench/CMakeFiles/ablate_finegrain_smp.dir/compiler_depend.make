# Empty compiler generated dependencies file for ablate_finegrain_smp.
# This may be replaced when dependencies are built.
