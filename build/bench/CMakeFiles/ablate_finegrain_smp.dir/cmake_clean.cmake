file(REMOVE_RECURSE
  "CMakeFiles/ablate_finegrain_smp.dir/ablate_finegrain_smp.cpp.o"
  "CMakeFiles/ablate_finegrain_smp.dir/ablate_finegrain_smp.cpp.o.d"
  "ablate_finegrain_smp"
  "ablate_finegrain_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_finegrain_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
