# Empty dependencies file for table01_platforms.
# This may be replaced when dependencies are built.
