file(REMOVE_RECURSE
  "CMakeFiles/table01_platforms.dir/table01_platforms.cpp.o"
  "CMakeFiles/table01_platforms.dir/table01_platforms.cpp.o.d"
  "table01_platforms"
  "table01_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
