file(REMOVE_RECURSE
  "CMakeFiles/ablate_mta_lookahead.dir/ablate_mta_lookahead.cpp.o"
  "CMakeFiles/ablate_mta_lookahead.dir/ablate_mta_lookahead.cpp.o.d"
  "ablate_mta_lookahead"
  "ablate_mta_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mta_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
