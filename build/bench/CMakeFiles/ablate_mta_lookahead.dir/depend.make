# Empty dependencies file for ablate_mta_lookahead.
# This may be replaced when dependencies are built.
