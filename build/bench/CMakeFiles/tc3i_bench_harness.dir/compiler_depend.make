# Empty compiler generated dependencies file for tc3i_bench_harness.
# This may be replaced when dependencies are built.
