file(REMOVE_RECURSE
  "../lib/libtc3i_bench_harness.a"
  "../lib/libtc3i_bench_harness.pdb"
  "CMakeFiles/tc3i_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/tc3i_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
