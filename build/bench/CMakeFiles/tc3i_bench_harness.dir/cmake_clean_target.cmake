file(REMOVE_RECURSE
  "../lib/libtc3i_bench_harness.a"
)
