file(REMOVE_RECURSE
  "CMakeFiles/project_smp_scaling.dir/project_smp_scaling.cpp.o"
  "CMakeFiles/project_smp_scaling.dir/project_smp_scaling.cpp.o.d"
  "project_smp_scaling"
  "project_smp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_smp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
