# Empty compiler generated dependencies file for project_smp_scaling.
# This may be replaced when dependencies are built.
