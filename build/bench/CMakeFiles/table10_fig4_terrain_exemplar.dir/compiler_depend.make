# Empty compiler generated dependencies file for table10_fig4_terrain_exemplar.
# This may be replaced when dependencies are built.
