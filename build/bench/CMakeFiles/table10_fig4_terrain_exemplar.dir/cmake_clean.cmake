file(REMOVE_RECURSE
  "CMakeFiles/table10_fig4_terrain_exemplar.dir/table10_fig4_terrain_exemplar.cpp.o"
  "CMakeFiles/table10_fig4_terrain_exemplar.dir/table10_fig4_terrain_exemplar.cpp.o.d"
  "table10_fig4_terrain_exemplar"
  "table10_fig4_terrain_exemplar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_fig4_terrain_exemplar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
