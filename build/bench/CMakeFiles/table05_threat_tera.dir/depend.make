# Empty dependencies file for table05_threat_tera.
# This may be replaced when dependencies are built.
