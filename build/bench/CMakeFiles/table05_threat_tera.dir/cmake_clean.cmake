file(REMOVE_RECURSE
  "CMakeFiles/table05_threat_tera.dir/table05_threat_tera.cpp.o"
  "CMakeFiles/table05_threat_tera.dir/table05_threat_tera.cpp.o.d"
  "table05_threat_tera"
  "table05_threat_tera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_threat_tera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
