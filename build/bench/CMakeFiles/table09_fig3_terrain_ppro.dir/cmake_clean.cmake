file(REMOVE_RECURSE
  "CMakeFiles/table09_fig3_terrain_ppro.dir/table09_fig3_terrain_ppro.cpp.o"
  "CMakeFiles/table09_fig3_terrain_ppro.dir/table09_fig3_terrain_ppro.cpp.o.d"
  "table09_fig3_terrain_ppro"
  "table09_fig3_terrain_ppro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_fig3_terrain_ppro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
