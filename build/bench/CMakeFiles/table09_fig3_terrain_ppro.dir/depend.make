# Empty dependencies file for table09_fig3_terrain_ppro.
# This may be replaced when dependencies are built.
