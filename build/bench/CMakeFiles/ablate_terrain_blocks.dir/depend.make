# Empty dependencies file for ablate_terrain_blocks.
# This may be replaced when dependencies are built.
