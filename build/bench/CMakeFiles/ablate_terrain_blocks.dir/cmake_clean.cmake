file(REMOVE_RECURSE
  "CMakeFiles/ablate_terrain_blocks.dir/ablate_terrain_blocks.cpp.o"
  "CMakeFiles/ablate_terrain_blocks.dir/ablate_terrain_blocks.cpp.o.d"
  "ablate_terrain_blocks"
  "ablate_terrain_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_terrain_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
