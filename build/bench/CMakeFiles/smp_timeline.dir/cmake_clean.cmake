file(REMOVE_RECURSE
  "CMakeFiles/smp_timeline.dir/smp_timeline.cpp.o"
  "CMakeFiles/smp_timeline.dir/smp_timeline.cpp.o.d"
  "smp_timeline"
  "smp_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
