# Empty compiler generated dependencies file for smp_timeline.
# This may be replaced when dependencies are built.
