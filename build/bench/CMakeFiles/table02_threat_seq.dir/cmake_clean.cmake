file(REMOVE_RECURSE
  "CMakeFiles/table02_threat_seq.dir/table02_threat_seq.cpp.o"
  "CMakeFiles/table02_threat_seq.dir/table02_threat_seq.cpp.o.d"
  "table02_threat_seq"
  "table02_threat_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_threat_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
