# Empty dependencies file for table02_threat_seq.
# This may be replaced when dependencies are built.
