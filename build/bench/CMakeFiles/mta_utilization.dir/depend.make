# Empty dependencies file for mta_utilization.
# This may be replaced when dependencies are built.
