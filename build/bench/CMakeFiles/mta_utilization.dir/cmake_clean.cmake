file(REMOVE_RECURSE
  "CMakeFiles/mta_utilization.dir/mta_utilization.cpp.o"
  "CMakeFiles/mta_utilization.dir/mta_utilization.cpp.o.d"
  "mta_utilization"
  "mta_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
