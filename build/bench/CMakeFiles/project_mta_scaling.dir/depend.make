# Empty dependencies file for project_mta_scaling.
# This may be replaced when dependencies are built.
