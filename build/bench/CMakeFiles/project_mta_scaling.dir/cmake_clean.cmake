file(REMOVE_RECURSE
  "CMakeFiles/project_mta_scaling.dir/project_mta_scaling.cpp.o"
  "CMakeFiles/project_mta_scaling.dir/project_mta_scaling.cpp.o.d"
  "project_mta_scaling"
  "project_mta_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_mta_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
