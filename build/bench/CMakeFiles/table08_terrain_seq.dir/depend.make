# Empty dependencies file for table08_terrain_seq.
# This may be replaced when dependencies are built.
