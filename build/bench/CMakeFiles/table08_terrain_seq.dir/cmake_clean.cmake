file(REMOVE_RECURSE
  "CMakeFiles/table08_terrain_seq.dir/table08_terrain_seq.cpp.o"
  "CMakeFiles/table08_terrain_seq.dir/table08_terrain_seq.cpp.o.d"
  "table08_terrain_seq"
  "table08_terrain_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_terrain_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
