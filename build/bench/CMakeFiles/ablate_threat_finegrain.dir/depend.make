# Empty dependencies file for ablate_threat_finegrain.
# This may be replaced when dependencies are built.
