file(REMOVE_RECURSE
  "CMakeFiles/ablate_threat_finegrain.dir/ablate_threat_finegrain.cpp.o"
  "CMakeFiles/ablate_threat_finegrain.dir/ablate_threat_finegrain.cpp.o.d"
  "ablate_threat_finegrain"
  "ablate_threat_finegrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_threat_finegrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
