file(REMOVE_RECURSE
  "CMakeFiles/mta_timeline.dir/mta_timeline.cpp.o"
  "CMakeFiles/mta_timeline.dir/mta_timeline.cpp.o.d"
  "mta_timeline"
  "mta_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
