# Empty dependencies file for mta_timeline.
# This may be replaced when dependencies are built.
