file(REMOVE_RECURSE
  "CMakeFiles/table07_threat_summary.dir/table07_threat_summary.cpp.o"
  "CMakeFiles/table07_threat_summary.dir/table07_threat_summary.cpp.o.d"
  "table07_threat_summary"
  "table07_threat_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_threat_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
