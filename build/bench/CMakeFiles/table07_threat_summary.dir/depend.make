# Empty dependencies file for table07_threat_summary.
# This may be replaced when dependencies are built.
