# Empty dependencies file for table11_terrain_tera.
# This may be replaced when dependencies are built.
