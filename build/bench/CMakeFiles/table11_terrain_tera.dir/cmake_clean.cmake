file(REMOVE_RECURSE
  "CMakeFiles/table11_terrain_tera.dir/table11_terrain_tera.cpp.o"
  "CMakeFiles/table11_terrain_tera.dir/table11_terrain_tera.cpp.o.d"
  "table11_terrain_tera"
  "table11_terrain_tera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_terrain_tera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
