file(REMOVE_RECURSE
  "CMakeFiles/ablate_mta_spawn_tree.dir/ablate_mta_spawn_tree.cpp.o"
  "CMakeFiles/ablate_mta_spawn_tree.dir/ablate_mta_spawn_tree.cpp.o.d"
  "ablate_mta_spawn_tree"
  "ablate_mta_spawn_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mta_spawn_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
