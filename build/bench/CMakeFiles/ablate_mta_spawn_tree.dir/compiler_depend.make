# Empty compiler generated dependencies file for ablate_mta_spawn_tree.
# This may be replaced when dependencies are built.
