file(REMOVE_RECURSE
  "CMakeFiles/ablate_mta_banks.dir/ablate_mta_banks.cpp.o"
  "CMakeFiles/ablate_mta_banks.dir/ablate_mta_banks.cpp.o.d"
  "ablate_mta_banks"
  "ablate_mta_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mta_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
