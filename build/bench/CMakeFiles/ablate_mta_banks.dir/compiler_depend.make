# Empty compiler generated dependencies file for ablate_mta_banks.
# This may be replaced when dependencies are built.
