file(REMOVE_RECURSE
  "CMakeFiles/autopar_verdicts.dir/autopar_verdicts.cpp.o"
  "CMakeFiles/autopar_verdicts.dir/autopar_verdicts.cpp.o.d"
  "autopar_verdicts"
  "autopar_verdicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_verdicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
