# Empty dependencies file for autopar_verdicts.
# This may be replaced when dependencies are built.
