# Empty compiler generated dependencies file for table04_fig2_threat_exemplar.
# This may be replaced when dependencies are built.
