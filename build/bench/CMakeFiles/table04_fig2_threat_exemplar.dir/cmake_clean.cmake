file(REMOVE_RECURSE
  "CMakeFiles/table04_fig2_threat_exemplar.dir/table04_fig2_threat_exemplar.cpp.o"
  "CMakeFiles/table04_fig2_threat_exemplar.dir/table04_fig2_threat_exemplar.cpp.o.d"
  "table04_fig2_threat_exemplar"
  "table04_fig2_threat_exemplar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_fig2_threat_exemplar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
