# Empty compiler generated dependencies file for table12_terrain_summary.
# This may be replaced when dependencies are built.
