file(REMOVE_RECURSE
  "CMakeFiles/table12_terrain_summary.dir/table12_terrain_summary.cpp.o"
  "CMakeFiles/table12_terrain_summary.dir/table12_terrain_summary.cpp.o.d"
  "table12_terrain_summary"
  "table12_terrain_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_terrain_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
