file(REMOVE_RECURSE
  "CMakeFiles/ablate_terrain_sched.dir/ablate_terrain_sched.cpp.o"
  "CMakeFiles/ablate_terrain_sched.dir/ablate_terrain_sched.cpp.o.d"
  "ablate_terrain_sched"
  "ablate_terrain_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_terrain_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
