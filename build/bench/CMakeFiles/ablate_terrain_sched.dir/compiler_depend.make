# Empty compiler generated dependencies file for ablate_terrain_sched.
# This may be replaced when dependencies are built.
