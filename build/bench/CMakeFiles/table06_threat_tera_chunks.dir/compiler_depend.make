# Empty compiler generated dependencies file for table06_threat_tera_chunks.
# This may be replaced when dependencies are built.
