file(REMOVE_RECURSE
  "CMakeFiles/table06_threat_tera_chunks.dir/table06_threat_tera_chunks.cpp.o"
  "CMakeFiles/table06_threat_tera_chunks.dir/table06_threat_tera_chunks.cpp.o.d"
  "table06_threat_tera_chunks"
  "table06_threat_tera_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_threat_tera_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
