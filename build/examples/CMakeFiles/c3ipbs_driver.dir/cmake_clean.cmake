file(REMOVE_RECURSE
  "CMakeFiles/c3ipbs_driver.dir/c3ipbs_driver.cpp.o"
  "CMakeFiles/c3ipbs_driver.dir/c3ipbs_driver.cpp.o.d"
  "c3ipbs_driver"
  "c3ipbs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c3ipbs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
