# Empty compiler generated dependencies file for c3ipbs_driver.
# This may be replaced when dependencies are built.
