file(REMOVE_RECURSE
  "CMakeFiles/compiler_report.dir/compiler_report.cpp.o"
  "CMakeFiles/compiler_report.dir/compiler_report.cpp.o.d"
  "compiler_report"
  "compiler_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
