# Empty dependencies file for compiler_report.
# This may be replaced when dependencies are built.
