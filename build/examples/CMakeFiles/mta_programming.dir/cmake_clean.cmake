file(REMOVE_RECURSE
  "CMakeFiles/mta_programming.dir/mta_programming.cpp.o"
  "CMakeFiles/mta_programming.dir/mta_programming.cpp.o.d"
  "mta_programming"
  "mta_programming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
