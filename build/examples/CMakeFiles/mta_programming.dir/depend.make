# Empty dependencies file for mta_programming.
# This may be replaced when dependencies are built.
