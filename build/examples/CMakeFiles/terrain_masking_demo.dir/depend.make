# Empty dependencies file for terrain_masking_demo.
# This may be replaced when dependencies are built.
