file(REMOVE_RECURSE
  "CMakeFiles/terrain_masking_demo.dir/terrain_masking_demo.cpp.o"
  "CMakeFiles/terrain_masking_demo.dir/terrain_masking_demo.cpp.o.d"
  "terrain_masking_demo"
  "terrain_masking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_masking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
