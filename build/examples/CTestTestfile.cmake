# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;19;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_terrain_masking_demo "/root/repo/build/examples/terrain_masking_demo" "--size" "96" "--threats" "8")
set_tests_properties(example_terrain_masking_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;20;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mta_programming "/root/repo/build/examples/mta_programming")
set_tests_properties(example_mta_programming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;21;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compiler_report "/root/repo/build/examples/compiler_report")
set_tests_properties(example_compiler_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;22;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_c3ipbs_driver "/root/repo/build/examples/c3ipbs_driver" "--scale" "small" "--threads" "2")
set_tests_properties(example_c3ipbs_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;23;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_make_dataset "/root/repo/build/examples/make_dataset" "--threats" "30" "--size" "64")
set_tests_properties(example_make_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;24;tc3i_example_test;/root/repo/examples/CMakeLists.txt;0;")
