file(REMOVE_RECURSE
  "CMakeFiles/terrain_grid_test.dir/terrain_grid_test.cpp.o"
  "CMakeFiles/terrain_grid_test.dir/terrain_grid_test.cpp.o.d"
  "terrain_grid_test"
  "terrain_grid_test.pdb"
  "terrain_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
