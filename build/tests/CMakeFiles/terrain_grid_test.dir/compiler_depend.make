# Empty compiler generated dependencies file for terrain_grid_test.
# This may be replaced when dependencies are built.
