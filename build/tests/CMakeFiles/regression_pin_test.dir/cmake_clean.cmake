file(REMOVE_RECURSE
  "CMakeFiles/regression_pin_test.dir/regression_pin_test.cpp.o"
  "CMakeFiles/regression_pin_test.dir/regression_pin_test.cpp.o.d"
  "regression_pin_test"
  "regression_pin_test.pdb"
  "regression_pin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_pin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
