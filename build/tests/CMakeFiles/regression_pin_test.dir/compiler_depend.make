# Empty compiler generated dependencies file for regression_pin_test.
# This may be replaced when dependencies are built.
