file(REMOVE_RECURSE
  "CMakeFiles/sthreads_future_test.dir/sthreads_future_test.cpp.o"
  "CMakeFiles/sthreads_future_test.dir/sthreads_future_test.cpp.o.d"
  "sthreads_future_test"
  "sthreads_future_test.pdb"
  "sthreads_future_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthreads_future_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
