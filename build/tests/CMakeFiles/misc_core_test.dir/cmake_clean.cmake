file(REMOVE_RECURSE
  "CMakeFiles/misc_core_test.dir/misc_core_test.cpp.o"
  "CMakeFiles/misc_core_test.dir/misc_core_test.cpp.o.d"
  "misc_core_test"
  "misc_core_test.pdb"
  "misc_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
