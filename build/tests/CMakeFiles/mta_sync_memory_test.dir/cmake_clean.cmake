file(REMOVE_RECURSE
  "CMakeFiles/mta_sync_memory_test.dir/mta_sync_memory_test.cpp.o"
  "CMakeFiles/mta_sync_memory_test.dir/mta_sync_memory_test.cpp.o.d"
  "mta_sync_memory_test"
  "mta_sync_memory_test.pdb"
  "mta_sync_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_sync_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
