# Empty dependencies file for terrain_variants_test.
# This may be replaced when dependencies are built.
