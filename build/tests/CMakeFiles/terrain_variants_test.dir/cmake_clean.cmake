file(REMOVE_RECURSE
  "CMakeFiles/terrain_variants_test.dir/terrain_variants_test.cpp.o"
  "CMakeFiles/terrain_variants_test.dir/terrain_variants_test.cpp.o.d"
  "terrain_variants_test"
  "terrain_variants_test.pdb"
  "terrain_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
