# Empty dependencies file for threat_variants_test.
# This may be replaced when dependencies are built.
