file(REMOVE_RECURSE
  "CMakeFiles/threat_variants_test.dir/threat_variants_test.cpp.o"
  "CMakeFiles/threat_variants_test.dir/threat_variants_test.cpp.o.d"
  "threat_variants_test"
  "threat_variants_test.pdb"
  "threat_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
