file(REMOVE_RECURSE
  "CMakeFiles/mta_machine_test.dir/mta_machine_test.cpp.o"
  "CMakeFiles/mta_machine_test.dir/mta_machine_test.cpp.o.d"
  "mta_machine_test"
  "mta_machine_test.pdb"
  "mta_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
