# Empty dependencies file for mta_machine_test.
# This may be replaced when dependencies are built.
