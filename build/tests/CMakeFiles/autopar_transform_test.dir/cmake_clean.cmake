file(REMOVE_RECURSE
  "CMakeFiles/autopar_transform_test.dir/autopar_transform_test.cpp.o"
  "CMakeFiles/autopar_transform_test.dir/autopar_transform_test.cpp.o.d"
  "autopar_transform_test"
  "autopar_transform_test.pdb"
  "autopar_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
