# Empty dependencies file for autopar_transform_test.
# This may be replaced when dependencies are built.
