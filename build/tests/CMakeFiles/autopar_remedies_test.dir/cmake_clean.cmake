file(REMOVE_RECURSE
  "CMakeFiles/autopar_remedies_test.dir/autopar_remedies_test.cpp.o"
  "CMakeFiles/autopar_remedies_test.dir/autopar_remedies_test.cpp.o.d"
  "autopar_remedies_test"
  "autopar_remedies_test.pdb"
  "autopar_remedies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_remedies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
