# Empty dependencies file for autopar_remedies_test.
# This may be replaced when dependencies are built.
