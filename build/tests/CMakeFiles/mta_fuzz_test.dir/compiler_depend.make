# Empty compiler generated dependencies file for mta_fuzz_test.
# This may be replaced when dependencies are built.
