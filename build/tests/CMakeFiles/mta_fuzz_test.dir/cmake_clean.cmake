file(REMOVE_RECURSE
  "CMakeFiles/mta_fuzz_test.dir/mta_fuzz_test.cpp.o"
  "CMakeFiles/mta_fuzz_test.dir/mta_fuzz_test.cpp.o.d"
  "mta_fuzz_test"
  "mta_fuzz_test.pdb"
  "mta_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
