file(REMOVE_RECURSE
  "CMakeFiles/core_text_test.dir/core_text_test.cpp.o"
  "CMakeFiles/core_text_test.dir/core_text_test.cpp.o.d"
  "core_text_test"
  "core_text_test.pdb"
  "core_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
