file(REMOVE_RECURSE
  "CMakeFiles/sim_fluid_test.dir/sim_fluid_test.cpp.o"
  "CMakeFiles/sim_fluid_test.dir/sim_fluid_test.cpp.o.d"
  "sim_fluid_test"
  "sim_fluid_test.pdb"
  "sim_fluid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fluid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
