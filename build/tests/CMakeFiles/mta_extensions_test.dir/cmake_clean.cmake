file(REMOVE_RECURSE
  "CMakeFiles/mta_extensions_test.dir/mta_extensions_test.cpp.o"
  "CMakeFiles/mta_extensions_test.dir/mta_extensions_test.cpp.o.d"
  "mta_extensions_test"
  "mta_extensions_test.pdb"
  "mta_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
