# Empty compiler generated dependencies file for mta_extensions_test.
# This may be replaced when dependencies are built.
