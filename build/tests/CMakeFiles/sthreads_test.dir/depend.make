# Empty dependencies file for sthreads_test.
# This may be replaced when dependencies are built.
