file(REMOVE_RECURSE
  "CMakeFiles/sthreads_test.dir/sthreads_test.cpp.o"
  "CMakeFiles/sthreads_test.dir/sthreads_test.cpp.o.d"
  "sthreads_test"
  "sthreads_test.pdb"
  "sthreads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthreads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
