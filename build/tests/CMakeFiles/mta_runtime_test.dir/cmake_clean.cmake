file(REMOVE_RECURSE
  "CMakeFiles/mta_runtime_test.dir/mta_runtime_test.cpp.o"
  "CMakeFiles/mta_runtime_test.dir/mta_runtime_test.cpp.o.d"
  "mta_runtime_test"
  "mta_runtime_test.pdb"
  "mta_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
