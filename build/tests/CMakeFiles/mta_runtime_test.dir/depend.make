# Empty dependencies file for mta_runtime_test.
# This may be replaced when dependencies are built.
