file(REMOVE_RECURSE
  "CMakeFiles/threat_physics_test.dir/threat_physics_test.cpp.o"
  "CMakeFiles/threat_physics_test.dir/threat_physics_test.cpp.o.d"
  "threat_physics_test"
  "threat_physics_test.pdb"
  "threat_physics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_physics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
