# Empty dependencies file for threat_physics_test.
# This may be replaced when dependencies are built.
