# Empty dependencies file for autopar_dependence_test.
# This may be replaced when dependencies are built.
