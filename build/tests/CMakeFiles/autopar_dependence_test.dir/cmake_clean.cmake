file(REMOVE_RECURSE
  "CMakeFiles/autopar_dependence_test.dir/autopar_dependence_test.cpp.o"
  "CMakeFiles/autopar_dependence_test.dir/autopar_dependence_test.cpp.o.d"
  "autopar_dependence_test"
  "autopar_dependence_test.pdb"
  "autopar_dependence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
