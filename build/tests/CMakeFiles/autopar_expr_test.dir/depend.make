# Empty dependencies file for autopar_expr_test.
# This may be replaced when dependencies are built.
