file(REMOVE_RECURSE
  "CMakeFiles/autopar_expr_test.dir/autopar_expr_test.cpp.o"
  "CMakeFiles/autopar_expr_test.dir/autopar_expr_test.cpp.o.d"
  "autopar_expr_test"
  "autopar_expr_test.pdb"
  "autopar_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
