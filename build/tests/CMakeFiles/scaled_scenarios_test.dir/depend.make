# Empty dependencies file for scaled_scenarios_test.
# This may be replaced when dependencies are built.
