file(REMOVE_RECURSE
  "CMakeFiles/scaled_scenarios_test.dir/scaled_scenarios_test.cpp.o"
  "CMakeFiles/scaled_scenarios_test.dir/scaled_scenarios_test.cpp.o.d"
  "scaled_scenarios_test"
  "scaled_scenarios_test.pdb"
  "scaled_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaled_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
