file(REMOVE_RECURSE
  "CMakeFiles/autopar_analysis_test.dir/autopar_analysis_test.cpp.o"
  "CMakeFiles/autopar_analysis_test.dir/autopar_analysis_test.cpp.o.d"
  "autopar_analysis_test"
  "autopar_analysis_test.pdb"
  "autopar_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopar_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
