# Empty dependencies file for autopar_analysis_test.
# This may be replaced when dependencies are built.
