file(REMOVE_RECURSE
  "CMakeFiles/smp_machine_test.dir/smp_machine_test.cpp.o"
  "CMakeFiles/smp_machine_test.dir/smp_machine_test.cpp.o.d"
  "smp_machine_test"
  "smp_machine_test.pdb"
  "smp_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
