file(REMOVE_RECURSE
  "CMakeFiles/mta_components_test.dir/mta_components_test.cpp.o"
  "CMakeFiles/mta_components_test.dir/mta_components_test.cpp.o.d"
  "mta_components_test"
  "mta_components_test.pdb"
  "mta_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mta_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
