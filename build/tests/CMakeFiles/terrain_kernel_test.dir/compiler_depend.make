# Empty compiler generated dependencies file for terrain_kernel_test.
# This may be replaced when dependencies are built.
