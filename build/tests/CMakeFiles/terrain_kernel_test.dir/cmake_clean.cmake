file(REMOVE_RECURSE
  "CMakeFiles/terrain_kernel_test.dir/terrain_kernel_test.cpp.o"
  "CMakeFiles/terrain_kernel_test.dir/terrain_kernel_test.cpp.o.d"
  "terrain_kernel_test"
  "terrain_kernel_test.pdb"
  "terrain_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
