# Empty compiler generated dependencies file for trace_builder_test.
# This may be replaced when dependencies are built.
