file(REMOVE_RECURSE
  "CMakeFiles/tc3i_sthreads.dir/sthreads/barrier.cpp.o"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/barrier.cpp.o.d"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/parallel_for.cpp.o"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/parallel_for.cpp.o.d"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/sync_var.cpp.o"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/sync_var.cpp.o.d"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/task_queue.cpp.o"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/task_queue.cpp.o.d"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/thread.cpp.o"
  "CMakeFiles/tc3i_sthreads.dir/sthreads/thread.cpp.o.d"
  "libtc3i_sthreads.a"
  "libtc3i_sthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_sthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
