# Empty compiler generated dependencies file for tc3i_sthreads.
# This may be replaced when dependencies are built.
