
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sthreads/barrier.cpp" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/barrier.cpp.o" "gcc" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/barrier.cpp.o.d"
  "/root/repo/src/sthreads/parallel_for.cpp" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/parallel_for.cpp.o" "gcc" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/parallel_for.cpp.o.d"
  "/root/repo/src/sthreads/sync_var.cpp" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/sync_var.cpp.o" "gcc" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/sync_var.cpp.o.d"
  "/root/repo/src/sthreads/task_queue.cpp" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/task_queue.cpp.o" "gcc" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/task_queue.cpp.o.d"
  "/root/repo/src/sthreads/thread.cpp" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/thread.cpp.o" "gcc" "src/CMakeFiles/tc3i_sthreads.dir/sthreads/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tc3i_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
