file(REMOVE_RECURSE
  "libtc3i_sthreads.a"
)
