file(REMOVE_RECURSE
  "CMakeFiles/tc3i_smp.dir/smp/config.cpp.o"
  "CMakeFiles/tc3i_smp.dir/smp/config.cpp.o.d"
  "CMakeFiles/tc3i_smp.dir/smp/machine.cpp.o"
  "CMakeFiles/tc3i_smp.dir/smp/machine.cpp.o.d"
  "CMakeFiles/tc3i_smp.dir/smp/workload.cpp.o"
  "CMakeFiles/tc3i_smp.dir/smp/workload.cpp.o.d"
  "libtc3i_smp.a"
  "libtc3i_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
