
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smp/config.cpp" "src/CMakeFiles/tc3i_smp.dir/smp/config.cpp.o" "gcc" "src/CMakeFiles/tc3i_smp.dir/smp/config.cpp.o.d"
  "/root/repo/src/smp/machine.cpp" "src/CMakeFiles/tc3i_smp.dir/smp/machine.cpp.o" "gcc" "src/CMakeFiles/tc3i_smp.dir/smp/machine.cpp.o.d"
  "/root/repo/src/smp/workload.cpp" "src/CMakeFiles/tc3i_smp.dir/smp/workload.cpp.o" "gcc" "src/CMakeFiles/tc3i_smp.dir/smp/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tc3i_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
