file(REMOVE_RECURSE
  "libtc3i_smp.a"
)
