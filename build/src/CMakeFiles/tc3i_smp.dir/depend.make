# Empty dependencies file for tc3i_smp.
# This may be replaced when dependencies are built.
