file(REMOVE_RECURSE
  "libtc3i_sim.a"
)
