# Empty compiler generated dependencies file for tc3i_sim.
# This may be replaced when dependencies are built.
