file(REMOVE_RECURSE
  "CMakeFiles/tc3i_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/tc3i_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/tc3i_sim.dir/sim/fluid.cpp.o"
  "CMakeFiles/tc3i_sim.dir/sim/fluid.cpp.o.d"
  "CMakeFiles/tc3i_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/tc3i_sim.dir/sim/trace.cpp.o.d"
  "libtc3i_sim.a"
  "libtc3i_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
