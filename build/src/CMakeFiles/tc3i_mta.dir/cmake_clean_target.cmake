file(REMOVE_RECURSE
  "libtc3i_mta.a"
)
