# Empty compiler generated dependencies file for tc3i_mta.
# This may be replaced when dependencies are built.
