
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mta/machine.cpp" "src/CMakeFiles/tc3i_mta.dir/mta/machine.cpp.o" "gcc" "src/CMakeFiles/tc3i_mta.dir/mta/machine.cpp.o.d"
  "/root/repo/src/mta/processor.cpp" "src/CMakeFiles/tc3i_mta.dir/mta/processor.cpp.o" "gcc" "src/CMakeFiles/tc3i_mta.dir/mta/processor.cpp.o.d"
  "/root/repo/src/mta/runtime.cpp" "src/CMakeFiles/tc3i_mta.dir/mta/runtime.cpp.o" "gcc" "src/CMakeFiles/tc3i_mta.dir/mta/runtime.cpp.o.d"
  "/root/repo/src/mta/stream_program.cpp" "src/CMakeFiles/tc3i_mta.dir/mta/stream_program.cpp.o" "gcc" "src/CMakeFiles/tc3i_mta.dir/mta/stream_program.cpp.o.d"
  "/root/repo/src/mta/sync_memory.cpp" "src/CMakeFiles/tc3i_mta.dir/mta/sync_memory.cpp.o" "gcc" "src/CMakeFiles/tc3i_mta.dir/mta/sync_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tc3i_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
