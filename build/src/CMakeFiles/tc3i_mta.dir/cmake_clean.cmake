file(REMOVE_RECURSE
  "CMakeFiles/tc3i_mta.dir/mta/machine.cpp.o"
  "CMakeFiles/tc3i_mta.dir/mta/machine.cpp.o.d"
  "CMakeFiles/tc3i_mta.dir/mta/processor.cpp.o"
  "CMakeFiles/tc3i_mta.dir/mta/processor.cpp.o.d"
  "CMakeFiles/tc3i_mta.dir/mta/runtime.cpp.o"
  "CMakeFiles/tc3i_mta.dir/mta/runtime.cpp.o.d"
  "CMakeFiles/tc3i_mta.dir/mta/stream_program.cpp.o"
  "CMakeFiles/tc3i_mta.dir/mta/stream_program.cpp.o.d"
  "CMakeFiles/tc3i_mta.dir/mta/sync_memory.cpp.o"
  "CMakeFiles/tc3i_mta.dir/mta/sync_memory.cpp.o.d"
  "libtc3i_mta.a"
  "libtc3i_mta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_mta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
