
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/c3i/cost_model.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/cost_model.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/cost_model.cpp.o.d"
  "/root/repo/src/c3i/io.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/io.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/io.cpp.o.d"
  "/root/repo/src/c3i/scenario.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/scenario.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/scenario.cpp.o.d"
  "/root/repo/src/c3i/suite.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/suite.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/suite.cpp.o.d"
  "/root/repo/src/c3i/terrain/checker.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/checker.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/checker.cpp.o.d"
  "/root/repo/src/c3i/terrain/coarse.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/coarse.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/coarse.cpp.o.d"
  "/root/repo/src/c3i/terrain/finegrained.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/finegrained.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/finegrained.cpp.o.d"
  "/root/repo/src/c3i/terrain/masking_kernel.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/masking_kernel.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/masking_kernel.cpp.o.d"
  "/root/repo/src/c3i/terrain/scenario_gen.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/scenario_gen.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/scenario_gen.cpp.o.d"
  "/root/repo/src/c3i/terrain/sequential.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/sequential.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/sequential.cpp.o.d"
  "/root/repo/src/c3i/terrain/terrain.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/terrain.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/terrain.cpp.o.d"
  "/root/repo/src/c3i/terrain/trace_builder.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/trace_builder.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/terrain/trace_builder.cpp.o.d"
  "/root/repo/src/c3i/threat/checker.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/checker.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/checker.cpp.o.d"
  "/root/repo/src/c3i/threat/chunked.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/chunked.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/chunked.cpp.o.d"
  "/root/repo/src/c3i/threat/finegrained.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/finegrained.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/finegrained.cpp.o.d"
  "/root/repo/src/c3i/threat/physics.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/physics.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/physics.cpp.o.d"
  "/root/repo/src/c3i/threat/scenario_gen.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/scenario_gen.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/scenario_gen.cpp.o.d"
  "/root/repo/src/c3i/threat/sequential.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/sequential.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/sequential.cpp.o.d"
  "/root/repo/src/c3i/threat/trace_builder.cpp" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/trace_builder.cpp.o" "gcc" "src/CMakeFiles/tc3i_c3i.dir/c3i/threat/trace_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tc3i_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_sthreads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_mta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_smp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tc3i_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
