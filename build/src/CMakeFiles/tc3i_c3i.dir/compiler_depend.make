# Empty compiler generated dependencies file for tc3i_c3i.
# This may be replaced when dependencies are built.
