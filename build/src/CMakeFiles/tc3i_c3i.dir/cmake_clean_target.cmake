file(REMOVE_RECURSE
  "libtc3i_c3i.a"
)
