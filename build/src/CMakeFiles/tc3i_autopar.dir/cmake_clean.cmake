file(REMOVE_RECURSE
  "CMakeFiles/tc3i_autopar.dir/autopar/dependence.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/dependence.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/expr.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/expr.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/ir.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/ir.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/parallelizer.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/parallelizer.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/programs.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/programs.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/remedies.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/remedies.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/report.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/report.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/scalar_analysis.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/scalar_analysis.cpp.o.d"
  "CMakeFiles/tc3i_autopar.dir/autopar/transform.cpp.o"
  "CMakeFiles/tc3i_autopar.dir/autopar/transform.cpp.o.d"
  "libtc3i_autopar.a"
  "libtc3i_autopar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_autopar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
