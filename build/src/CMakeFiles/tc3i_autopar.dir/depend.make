# Empty dependencies file for tc3i_autopar.
# This may be replaced when dependencies are built.
