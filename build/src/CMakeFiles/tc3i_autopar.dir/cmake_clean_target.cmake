file(REMOVE_RECURSE
  "libtc3i_autopar.a"
)
