
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autopar/dependence.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/dependence.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/dependence.cpp.o.d"
  "/root/repo/src/autopar/expr.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/expr.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/expr.cpp.o.d"
  "/root/repo/src/autopar/ir.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/ir.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/ir.cpp.o.d"
  "/root/repo/src/autopar/parallelizer.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/parallelizer.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/parallelizer.cpp.o.d"
  "/root/repo/src/autopar/programs.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/programs.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/programs.cpp.o.d"
  "/root/repo/src/autopar/remedies.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/remedies.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/remedies.cpp.o.d"
  "/root/repo/src/autopar/report.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/report.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/report.cpp.o.d"
  "/root/repo/src/autopar/scalar_analysis.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/scalar_analysis.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/scalar_analysis.cpp.o.d"
  "/root/repo/src/autopar/transform.cpp" "src/CMakeFiles/tc3i_autopar.dir/autopar/transform.cpp.o" "gcc" "src/CMakeFiles/tc3i_autopar.dir/autopar/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tc3i_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
