file(REMOVE_RECURSE
  "CMakeFiles/tc3i_platforms.dir/platforms/calibration.cpp.o"
  "CMakeFiles/tc3i_platforms.dir/platforms/calibration.cpp.o.d"
  "CMakeFiles/tc3i_platforms.dir/platforms/experiment.cpp.o"
  "CMakeFiles/tc3i_platforms.dir/platforms/experiment.cpp.o.d"
  "CMakeFiles/tc3i_platforms.dir/platforms/paper.cpp.o"
  "CMakeFiles/tc3i_platforms.dir/platforms/paper.cpp.o.d"
  "CMakeFiles/tc3i_platforms.dir/platforms/platform.cpp.o"
  "CMakeFiles/tc3i_platforms.dir/platforms/platform.cpp.o.d"
  "libtc3i_platforms.a"
  "libtc3i_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
