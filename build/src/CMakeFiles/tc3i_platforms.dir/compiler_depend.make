# Empty compiler generated dependencies file for tc3i_platforms.
# This may be replaced when dependencies are built.
