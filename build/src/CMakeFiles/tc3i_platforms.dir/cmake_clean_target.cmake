file(REMOVE_RECURSE
  "libtc3i_platforms.a"
)
