# Empty dependencies file for tc3i_core.
# This may be replaced when dependencies are built.
