file(REMOVE_RECURSE
  "libtc3i_core.a"
)
