
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chart.cpp" "src/CMakeFiles/tc3i_core.dir/core/chart.cpp.o" "gcc" "src/CMakeFiles/tc3i_core.dir/core/chart.cpp.o.d"
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/tc3i_core.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/tc3i_core.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/tc3i_core.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/tc3i_core.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/tc3i_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/tc3i_core.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/CMakeFiles/tc3i_core.dir/core/table.cpp.o" "gcc" "src/CMakeFiles/tc3i_core.dir/core/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
