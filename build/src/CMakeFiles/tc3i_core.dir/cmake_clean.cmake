file(REMOVE_RECURSE
  "CMakeFiles/tc3i_core.dir/core/chart.cpp.o"
  "CMakeFiles/tc3i_core.dir/core/chart.cpp.o.d"
  "CMakeFiles/tc3i_core.dir/core/cli.cpp.o"
  "CMakeFiles/tc3i_core.dir/core/cli.cpp.o.d"
  "CMakeFiles/tc3i_core.dir/core/rng.cpp.o"
  "CMakeFiles/tc3i_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/tc3i_core.dir/core/stats.cpp.o"
  "CMakeFiles/tc3i_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/tc3i_core.dir/core/table.cpp.o"
  "CMakeFiles/tc3i_core.dir/core/table.cpp.o.d"
  "libtc3i_core.a"
  "libtc3i_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc3i_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
