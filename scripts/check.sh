#!/usr/bin/env bash
# Tier-1 verification: configure with strict warnings, build, run the full
# test suite, then smoke-run one instrumented bench and validate its JSON
# outputs. Usage: scripts/check.sh [build-dir]  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure (-Wall -Wextra -Werror) =="
cmake -B "$BUILD_DIR" -S . -DTC3I_WERROR=ON >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j >/dev/null

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" >/dev/null
echo "tests passed"

echo "== instrumented smoke run =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR"/bench/table05_threat_tera \
    --trace-out "$SMOKE_DIR/t.json" \
    --report-out "$SMOKE_DIR/r.json" \
    --timeline-out "$SMOKE_DIR/tl.csv" \
    --sample-period 2048 \
    --counters >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/t.json" "$SMOKE_DIR/r.json" \
    "$SMOKE_DIR/tl.csv"

# The trace must carry all four simulator event categories and the report
# must carry comparison rows plus a populated counter snapshot.
for cat in issue memory sync spawn; do
  grep -q "\"cat\":\"$cat\"" "$SMOKE_DIR/t.json" ||
    { echo "FAIL: trace missing category '$cat'"; exit 1; }
done
grep -q '"label":' "$SMOKE_DIR/r.json" ||
  { echo "FAIL: report has no comparison rows"; exit 1; }
[ "$(grep -o '"mta\.[a-z0-9_.]*":' "$SMOKE_DIR/r.json" | sort -u | wc -l)" -ge 10 ] ||
  { echo "FAIL: report has fewer than 10 named counters"; exit 1; }
[ -s "$SMOKE_DIR/t.csv" ] ||
  { echo "FAIL: sibling CSV timeline missing"; exit 1; }

echo "== sampled timeline + bottleneck verdicts =="
# The sampled timeline must be non-empty and strictly monotone in cycle
# within each (run, series) pair.
[ -s "$SMOKE_DIR/tl.csv" ] ||
  { echo "FAIL: sampled timeline CSV missing"; exit 1; }
awk -F, 'NR == 1 { next }
         { key = $1 "," $4 }
         key in last && $5 <= last[key] {
           print "FAIL: non-monotone cycle in " key; bad = 1; exit 1 }
         { last[key] = $5 }
         END { exit bad }' "$SMOKE_DIR/tl.csv" ||
  { echo "FAIL: timeline cycles not monotone"; exit 1; }

# The bottleneck analyzer must produce a verdict line for the smoke report,
# and a report diffed against itself must match exactly.
"$BUILD_DIR"/tools/bottleneck_report "$SMOKE_DIR/r.json" |
  grep -q '^verdict' ||
  { echo "FAIL: bottleneck_report printed no verdict"; exit 1; }
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/r.json" "$SMOKE_DIR/r.json" \
  >/dev/null ||
  { echo "FAIL: report_diff self-diff reported differences"; exit 1; }

echo "== critical-path capture + what-if projections =="
# Re-run the smoke bench with --critpath: the report gains per-run
# "critical_path" sections (schema-checked by json_check), whatif_report
# must print a projection table, and the critical-path verdicts must agree
# with the slot-account verdicts run for run. The report produced WITHOUT
# the flag must carry no critical_path section at all (capture is opt-in).
if grep -q '"critical_path"' "$SMOKE_DIR/r.json"; then
  echo "FAIL: report without --critpath carries critical_path"; exit 1
fi
"$BUILD_DIR"/bench/table05_threat_tera \
    --critpath \
    --report-out "$SMOKE_DIR/cp.json" >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/cp.json"
grep -q '"critical_path"' "$SMOKE_DIR/cp.json" ||
  { echo "FAIL: --critpath report has no critical_path sections"; exit 1; }
"$BUILD_DIR"/tools/whatif_report "$SMOKE_DIR/cp.json" |
  grep -q 'memory_latency' ||
  { echo "FAIL: whatif_report printed no projection rows"; exit 1; }
# Both modes print identically formatted `verdict run=...` lines, so
# run-for-run agreement is a plain diff of the two filtered outputs.
diff <("$BUILD_DIR"/tools/bottleneck_report "$SMOKE_DIR/cp.json" |
         grep '^verdict run') \
     <("$BUILD_DIR"/tools/bottleneck_report --critical-path \
         "$SMOKE_DIR/cp.json" | grep '^verdict run') ||
  { echo "FAIL: critical-path verdicts disagree with slot account"; exit 1; }

echo "== perf smoke (sim_throughput vs committed baseline) =="
# Fails (exit 1) when any throughput metric drops below 70% of the
# committed bench/BENCH_sim_throughput.json (--min-ratio default 0.7,
# i.e. a >30% regression).
"$BUILD_DIR"/bench/sim_throughput \
    --report-out "$SMOKE_DIR/sim_throughput.json" \
    --baseline bench/BENCH_sim_throughput.json
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/sim_throughput.json"

# Capture must stay cheap: the critpath_overhead regime (saturated scenario
# re-run with a live CritPathStore) must keep at least half the plain
# saturated throughput, i.e. under a 2x slowdown.
extract_measured() {
  grep -o "\"label\":\"$1\",\"paper\":[0-9.eE+-]*,\"measured\":[0-9.eE+-]*" \
      "$SMOKE_DIR/sim_throughput.json" | sed 's/.*"measured"://'
}
SAT="$(extract_measured 'saturated.cycles_per_sec')"
CPO="$(extract_measured 'critpath_overhead.cycles_per_sec')"
[ -n "$SAT" ] && [ -n "$CPO" ] ||
  { echo "FAIL: sim_throughput report missing saturated/critpath rows"; \
    exit 1; }
awk -v sat="$SAT" -v cpo="$CPO" 'BEGIN { exit !(cpo >= 0.5 * sat) }' ||
  { echo "FAIL: critpath_overhead $CPO < 0.5 x saturated $SAT"; exit 1; }
echo "critpath overhead within budget ($CPO vs saturated $SAT cycles/s)"

echo "ALL CHECKS PASSED"
