#!/usr/bin/env bash
# Tier-1 verification: configure with strict warnings, build, run the full
# test suite, then smoke-run one instrumented bench and validate its JSON
# outputs. Usage: scripts/check.sh [build-dir]  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure (-Wall -Wextra -Werror) =="
cmake -B "$BUILD_DIR" -S . -DTC3I_WERROR=ON >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j >/dev/null

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" >/dev/null
echo "tests passed"

echo "== instrumented smoke run =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR"/bench/table05_threat_tera \
    --trace-out "$SMOKE_DIR/t.json" \
    --report-out "$SMOKE_DIR/r.json" \
    --timeline-out "$SMOKE_DIR/tl.csv" \
    --sample-period 2048 \
    --counters >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/t.json" "$SMOKE_DIR/r.json"

# The trace must carry all four simulator event categories and the report
# must carry comparison rows plus a populated counter snapshot.
for cat in issue memory sync spawn; do
  grep -q "\"cat\":\"$cat\"" "$SMOKE_DIR/t.json" ||
    { echo "FAIL: trace missing category '$cat'"; exit 1; }
done
grep -q '"label":' "$SMOKE_DIR/r.json" ||
  { echo "FAIL: report has no comparison rows"; exit 1; }
[ "$(grep -o '"mta\.[a-z0-9_.]*":' "$SMOKE_DIR/r.json" | sort -u | wc -l)" -ge 10 ] ||
  { echo "FAIL: report has fewer than 10 named counters"; exit 1; }
[ -s "$SMOKE_DIR/t.csv" ] ||
  { echo "FAIL: sibling CSV timeline missing"; exit 1; }

echo "== sampled timeline + bottleneck verdicts =="
# The sampled timeline must be non-empty and strictly monotone in cycle
# within each (run, series) pair.
[ -s "$SMOKE_DIR/tl.csv" ] ||
  { echo "FAIL: sampled timeline CSV missing"; exit 1; }
awk -F, 'NR == 1 { next }
         { key = $1 "," $4 }
         key in last && $5 <= last[key] {
           print "FAIL: non-monotone cycle in " key; bad = 1; exit 1 }
         { last[key] = $5 }
         END { exit bad }' "$SMOKE_DIR/tl.csv" ||
  { echo "FAIL: timeline cycles not monotone"; exit 1; }

# The bottleneck analyzer must produce a verdict line for the smoke report,
# and a report diffed against itself must match exactly.
"$BUILD_DIR"/tools/bottleneck_report "$SMOKE_DIR/r.json" |
  grep -q '^verdict' ||
  { echo "FAIL: bottleneck_report printed no verdict"; exit 1; }
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/r.json" "$SMOKE_DIR/r.json" \
  >/dev/null ||
  { echo "FAIL: report_diff self-diff reported differences"; exit 1; }

echo "== perf smoke (sim_throughput vs committed baseline) =="
# Fails (exit 1) when any throughput metric drops below 70% of the
# committed bench/BENCH_sim_throughput.json (--min-ratio default 0.7,
# i.e. a >30% regression).
"$BUILD_DIR"/bench/sim_throughput \
    --report-out "$SMOKE_DIR/sim_throughput.json" \
    --baseline bench/BENCH_sim_throughput.json
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/sim_throughput.json"

echo "ALL CHECKS PASSED"
