#!/usr/bin/env bash
# Tier-1 verification: configure with strict warnings, build, run the full
# test suite, then smoke-run one instrumented bench and validate its JSON
# outputs. Usage: scripts/check.sh [build-dir]  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure (-Wall -Wextra -Werror) =="
cmake -B "$BUILD_DIR" -S . -DTC3I_WERROR=ON >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j >/dev/null

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" >/dev/null
echo "tests passed"

echo "== instrumented smoke run =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR"/bench/table05_threat_tera \
    --trace-out "$SMOKE_DIR/t.json" \
    --report-out "$SMOKE_DIR/r.json" \
    --timeline-out "$SMOKE_DIR/tl.csv" \
    --sample-period 2048 \
    --counters >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/t.json" "$SMOKE_DIR/r.json" \
    "$SMOKE_DIR/tl.csv"

# The trace must carry all four simulator event categories and the report
# must carry comparison rows plus a populated counter snapshot.
for cat in issue memory sync spawn; do
  grep -q "\"cat\":\"$cat\"" "$SMOKE_DIR/t.json" ||
    { echo "FAIL: trace missing category '$cat'"; exit 1; }
done
grep -q '"label":' "$SMOKE_DIR/r.json" ||
  { echo "FAIL: report has no comparison rows"; exit 1; }
[ "$(grep -o '"mta\.[a-z0-9_.]*":' "$SMOKE_DIR/r.json" | sort -u | wc -l)" -ge 10 ] ||
  { echo "FAIL: report has fewer than 10 named counters"; exit 1; }
[ -s "$SMOKE_DIR/t.csv" ] ||
  { echo "FAIL: sibling CSV timeline missing"; exit 1; }

echo "== sampled timeline + bottleneck verdicts =="
# The sampled timeline must be non-empty and strictly monotone in cycle
# within each (run, series) pair.
[ -s "$SMOKE_DIR/tl.csv" ] ||
  { echo "FAIL: sampled timeline CSV missing"; exit 1; }
awk -F, 'NR == 1 { next }
         { key = $1 "," $4 }
         key in last && $5 <= last[key] {
           print "FAIL: non-monotone cycle in " key; bad = 1; exit 1 }
         { last[key] = $5 }
         END { exit bad }' "$SMOKE_DIR/tl.csv" ||
  { echo "FAIL: timeline cycles not monotone"; exit 1; }

# The bottleneck analyzer must produce a verdict line for the smoke report,
# and a report diffed against itself must match exactly.
"$BUILD_DIR"/tools/bottleneck_report "$SMOKE_DIR/r.json" |
  grep -q '^verdict' ||
  { echo "FAIL: bottleneck_report printed no verdict"; exit 1; }
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/r.json" "$SMOKE_DIR/r.json" \
  >/dev/null ||
  { echo "FAIL: report_diff self-diff reported differences"; exit 1; }

echo "== critical-path capture + what-if projections =="
# Re-run the smoke bench with --critpath: the report gains per-run
# "critical_path" sections (schema-checked by json_check), whatif_report
# must print a projection table, and the critical-path verdicts must agree
# with the slot-account verdicts run for run. The report produced WITHOUT
# the flag must carry no critical_path section at all (capture is opt-in).
if grep -q '"critical_path"' "$SMOKE_DIR/r.json"; then
  echo "FAIL: report without --critpath carries critical_path"; exit 1
fi
"$BUILD_DIR"/bench/table05_threat_tera \
    --critpath \
    --report-out "$SMOKE_DIR/cp.json" >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/cp.json"
grep -q '"critical_path"' "$SMOKE_DIR/cp.json" ||
  { echo "FAIL: --critpath report has no critical_path sections"; exit 1; }
"$BUILD_DIR"/tools/whatif_report "$SMOKE_DIR/cp.json" |
  grep -q 'memory_latency' ||
  { echo "FAIL: whatif_report printed no projection rows"; exit 1; }
# Both modes print identically formatted `verdict run=...` lines, so
# run-for-run agreement is a plain diff of the two filtered outputs.
diff <("$BUILD_DIR"/tools/bottleneck_report "$SMOKE_DIR/cp.json" |
         grep '^verdict run') \
     <("$BUILD_DIR"/tools/bottleneck_report --critical-path \
         "$SMOKE_DIR/cp.json" | grep '^verdict run') ||
  { echo "FAIL: critical-path verdicts disagree with slot account"; exit 1; }

echo "== sweep telemetry (report + trace + independent recomputation) =="
# A --jobs run with sweep telemetry enabled must produce a schema-valid
# SweepReport and sweep-scheduler trace, and the report's aggregate
# sections must match an independent recomputation from the per-run
# RunReport (host accounting differs by construction: --from-runs has no
# host to sample).
"$BUILD_DIR"/bench/table05_threat_tera \
    --jobs 4 \
    --report-out "$SMOKE_DIR/sw_runs.json" \
    --sweep-report-out "$SMOKE_DIR/sw.json" \
    --sweep-trace-out "$SMOKE_DIR/sw_trace.json" >/dev/null
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/sw.json" "$SMOKE_DIR/sw_trace.json"
grep -q '"kind":"sweep_report"' "$SMOKE_DIR/sw.json" ||
  { echo "FAIL: sweep report missing kind=sweep_report"; exit 1; }
grep -q '"sweep scheduler"' "$SMOKE_DIR/sw_trace.json" ||
  { echo "FAIL: sweep trace has no scheduler track"; exit 1; }
"$BUILD_DIR"/tools/sweep_report --from-runs "$SMOKE_DIR/sw_runs.json" \
    > "$SMOKE_DIR/sw_recomputed.json"
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/sw_recomputed.json"
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/sw.json" \
    "$SMOKE_DIR/sw_recomputed.json" --ignore host >/dev/null ||
  { echo "FAIL: sweep report disagrees with recomputation from runs"; \
    exit 1; }
echo "sweep report matches independent recomputation"

echo "== batched sweep engine (lanes byte-identity) =="
# The batched lockstep engine must be invisible in the output: the same
# table 5 sweep at --lanes 1 (scalar fallback) and --lanes 4 must produce
# byte-identical reports modulo wall-clock timings.
"$BUILD_DIR"/bench/table05_threat_tera --lanes 1 \
    --report-out "$SMOKE_DIR/lanes1.json" >/dev/null
"$BUILD_DIR"/bench/table05_threat_tera --lanes 4 \
    --report-out "$SMOKE_DIR/lanes4.json" >/dev/null
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/lanes1.json" \
    "$SMOKE_DIR/lanes4.json" --ignore mta.run.wall_seconds >/dev/null ||
  { echo "FAIL: --lanes 4 report differs from --lanes 1"; exit 1; }
echo "lanes=4 report byte-identical to lanes=1 (modulo wall time)"

# The flight recorder is sampled, never merged: the same sweep with the
# recorder disabled (TC3I_FLIGHT=0) and at a different jobs x lanes shape
# must still produce the identical report.
TC3I_FLIGHT=0 "$BUILD_DIR"/bench/table05_threat_tera --lanes 4 --jobs 3 \
    --report-out "$SMOKE_DIR/lanes4_noflight.json" >/dev/null
"$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/lanes1.json" \
    "$SMOKE_DIR/lanes4_noflight.json" --ignore mta.run.wall_seconds \
    >/dev/null ||
  { echo "FAIL: report changes when the flight recorder is disabled"; \
    exit 1; }
echo "report byte-identical with flight recorder on or off"

echo "== partitioned single-run engine (--run-threads byte-identity) =="
# The intra-run partitioning tentpole must be invisible in the output:
# every table bench at --run-threads 8 must print the same stdout and
# produce the same report as the scalar --run-threads 1 run, modulo wall
# time and the partition rollups only the partitioned run adds. Identity
# is gated on every host; the speedup claim is gated separately below,
# only where real cores exist.
for T in table05_threat_tera table06_threat_tera_chunks table11_terrain_tera
do
  # grep -v: the harness's "[obs] report: <path>" sideband line names the
  # output file, which legitimately differs between the two runs.
  "$BUILD_DIR"/bench/"$T" --run-threads 1 \
      --report-out "$SMOKE_DIR/rt1.json" |
    grep -v '^\[obs\]' > "$SMOKE_DIR/rt1.out"
  "$BUILD_DIR"/bench/"$T" --run-threads 8 \
      --report-out "$SMOKE_DIR/rt8.json" |
    grep -v '^\[obs\]' > "$SMOKE_DIR/rt8.out"
  diff "$SMOKE_DIR/rt1.out" "$SMOKE_DIR/rt8.out" >/dev/null ||
    { echo "FAIL: $T stdout differs at --run-threads 8"; exit 1; }
  "$BUILD_DIR"/tools/json_check "$SMOKE_DIR/rt8.json"
  "$BUILD_DIR"/tools/report_diff "$SMOKE_DIR/rt1.json" \
      "$SMOKE_DIR/rt8.json" --ignore mta.run.wall_seconds \
      --ignore mta.partition --ignore partitions >/dev/null ||
    { echo "FAIL: $T report differs at --run-threads 8"; exit 1; }
  grep -q '"partitions":' "$SMOKE_DIR/rt8.json" ||
    { echo "FAIL: $T --run-threads 8 report has no partition rollups"; \
      exit 1; }
done
echo "run-threads=8 identical to scalar for tables 05/06/11 (modulo wall" \
     "time + partition rollups)"

echo "== live status bus (--status-out + sweep_monitor) =="
# The live-telemetry tentpole: a sweep run with --status-out must publish
# monotonically-advancing snapshots while it runs, finish with a done=true
# snapshot whose point counts match the SweepReport's scheduler section,
# validate against json_check's live_status schema, and be readable by
# sweep_monitor in both CI (--once) and follow modes.
STATUS="$SMOKE_DIR/live.json"
"$BUILD_DIR"/bench/table05_threat_tera --jobs 2 \
    --status-out "$STATUS" --status-period 50 \
    --sweep-report-out "$SMOKE_DIR/live_sweep.json" >/dev/null &
LIVE_PID=$!
LAST_VER=0
MONO=ok
while kill -0 "$LIVE_PID" 2>/dev/null; do
  if [ -f "$STATUS" ]; then
    VER="$(grep -o '"version":[0-9][0-9]*' "$STATUS" | head -1 |
           cut -d: -f2 || true)"
    if [ -n "$VER" ]; then
      [ "$VER" -ge "$LAST_VER" ] ||
        { echo "FAIL: status version went backwards ($LAST_VER -> $VER)"; \
          MONO=bad; }
      LAST_VER="$VER"
    fi
  fi
  sleep 0.05
done
wait "$LIVE_PID" ||
  { echo "FAIL: table05 with --status-out exited nonzero"; exit 1; }
[ "$MONO" = ok ] || exit 1
[ "$LAST_VER" -ge 1 ] ||
  { echo "FAIL: no live status snapshot was published"; exit 1; }
"$BUILD_DIR"/tools/json_check "$STATUS"
grep -q '"done":true' "$STATUS" ||
  { echo "FAIL: final status snapshot is not done=true"; exit 1; }
# [0-9][0-9]* (one-or-more): with a bare *, the boolean top-level
# "done":true would match with zero digits and yield an empty value.
LIVE_DONE="$(grep -o '"done":[0-9][0-9]*' "$STATUS" | head -1 |
             cut -d: -f2)"
LIVE_TOTAL="$(grep -o '"total":[0-9][0-9]*' "$STATUS" | head -1 |
              cut -d: -f2)"
SCHED_PTS="$(sed -n \
    's/.*"sched":{"sweeps":[0-9]*,"points":\([0-9]*\).*/\1/p' \
    "$SMOKE_DIR/live_sweep.json")"
[ -n "$LIVE_DONE" ] && [ "$LIVE_DONE" = "$LIVE_TOTAL" ] &&
    [ "$LIVE_DONE" = "$SCHED_PTS" ] ||
  { echo "FAIL: status counts done=$LIVE_DONE total=$LIVE_TOTAL disagree" \
         "with sweep report points=$SCHED_PTS"; exit 1; }
"$BUILD_DIR"/tools/sweep_monitor "$STATUS" --once | grep -q 'done=1' ||
  { echo "FAIL: sweep_monitor --once did not report done=1"; exit 1; }
# done=true is already on disk, so follow mode must exit 0 immediately.
"$BUILD_DIR"/tools/sweep_monitor "$STATUS" --follow --timeout 10 >/dev/null ||
  { echo "FAIL: sweep_monitor --follow did not exit cleanly"; exit 1; }
echo "live status: $LAST_VER snapshots, final counts match sweep report" \
     "($LIVE_DONE/$LIVE_TOTAL points)"

echo "== flight recorder (forced anomaly -> dump -> report/validate) =="
# The black-box tentpole: a sweep with an injected 600ms stall on point 1
# and a 0.2s watchdog heartbeat timeout must trip a stalled_worker
# anomaly, whose first sighting snapshots every flight ring into
# --flight-out. The dump must validate (json_check flight_dump pass),
# flight_report must render the cross-linked trigger, and sweep_monitor
# --once must exit 3 on the anomalous final status.
FSTATUS="$SMOKE_DIR/flight_live.json"
FDUMP="$SMOKE_DIR/flight.json"
TC3I_INJECT_SLOW_POINT="1:600" "$BUILD_DIR"/bench/table05_threat_tera \
    --lanes 1 --jobs 2 \
    --status-out "$FSTATUS" --status-period 25 \
    --watchdog-timeout 0.2 \
    --flight-out "$FDUMP" >/dev/null ||
  { echo "FAIL: table05 with --flight-out exited nonzero"; exit 1; }
[ -s "$FDUMP" ] ||
  { echo "FAIL: watchdog anomaly produced no flight dump"; exit 1; }
"$BUILD_DIR"/tools/json_check "$FDUMP" "$FSTATUS"
"$BUILD_DIR"/tools/flight_report "$FDUMP" |
  grep -q '^trigger reason=watchdog kind=' ||
  { echo "FAIL: flight_report shows no cross-linked watchdog trigger"; \
    exit 1; }
"$BUILD_DIR"/tools/flight_report "$FDUMP" --all | grep -q '^event ' ||
  { echo "FAIL: flight_report rendered no timeline events"; exit 1; }
MON_RC=0
"$BUILD_DIR"/tools/sweep_monitor "$FSTATUS" --once >/dev/null || MON_RC=$?
[ "$MON_RC" -eq 3 ] ||
  { echo "FAIL: sweep_monitor --once exited $MON_RC, expected 3" \
         "(anomalies present)"; exit 1; }
# No crash happened, so the pre-opened crash file must be gone.
[ ! -e "$FDUMP.crash" ] ||
  { echo "FAIL: clean run left $FDUMP.crash behind"; exit 1; }
echo "flight dump validated, trigger cross-linked, monitor flagged exit 3"

# Referential validation must actually reject: a minimal v5 report whose
# anomaly pins point 5 when machine_runs holds a single run is corrupt.
cat > "$SMOKE_DIR/bad_anomaly.json" <<'EOF'
{"bench":"fixture","schema_version":5,"config":{},"counters":{},
 "gauges":{},"histograms":{},"rows":[],"notes":[],
 "machine_runs":[{"model":"smp","name":"p","processors":1,
                  "utilization":0.5}],
 "anomalies":[{"kind":"slow_point","worker":0,"point":5,"at_seconds":1,
               "observed_seconds":2,"threshold_seconds":1}]}
EOF
if "$BUILD_DIR"/tools/json_check "$SMOKE_DIR/bad_anomaly.json" \
    >/dev/null 2>&1; then
  echo "FAIL: json_check accepted an anomaly pointing past machine_runs"
  exit 1
fi
# The same fixture with an in-range point must pass (the rejection above
# is the referential check, not some other schema complaint).
sed 's/"point":5/"point":0/' "$SMOKE_DIR/bad_anomaly.json" \
    > "$SMOKE_DIR/ok_anomaly.json"
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/ok_anomaly.json" >/dev/null ||
  { echo "FAIL: json_check rejected an in-range anomaly fixture"; exit 1; }
echo "referential anomaly validation rejects out-of-range point"

echo "== TSan smoke (obs_live_test under -fsanitize=thread) =="
# The bus's worker path is wait-free by design; prove it data-race-free
# under ThreadSanitizer where the toolchain supports it (the
# LivePublisherTest cases hammer worker cells against the publisher fold).
if printf 'int main(){return 0;}' |
    c++ -fsanitize=thread -x c++ - -o "$SMOKE_DIR/tsan_probe" 2>/dev/null &&
    "$SMOKE_DIR/tsan_probe" 2>/dev/null; then
  TSAN_DIR="build-tsan"
  cmake -B "$TSAN_DIR" -S . -DTC3I_SANITIZE=thread -DTC3I_WERROR=ON \
      >/dev/null
  cmake --build "$TSAN_DIR" --target obs_live_test -j >/dev/null
  "$TSAN_DIR"/tests/obs_live_test >/dev/null ||
    { echo "FAIL: obs_live_test failed under TSan"; exit 1; }
  echo "obs_live_test clean under ThreadSanitizer"
  # Drive the partitioned single-run scheduler (worker pool + window
  # barriers + owner-written hazard bounds) through a real table sweep
  # under TSan as well.
  cmake --build "$TSAN_DIR" --target table05_threat_tera -j >/dev/null
  "$TSAN_DIR"/bench/table05_threat_tera --run-threads 4 >/dev/null ||
    { echo "FAIL: table05 --run-threads 4 failed under TSan"; exit 1; }
  echo "partitioned --run-threads 4 clean under ThreadSanitizer"
else
  echo "skipped: toolchain lacks -fsanitize=thread support"
fi

echo "== ASan smoke (obs_flight_test under -fsanitize=address) =="
# The flight rings are fixed storage written wait-free and read by
# concurrent dumps and signal handlers; prove the whole capture/dump/crash
# cycle clean under AddressSanitizer where the toolchain supports it.
if printf 'int main(){return 0;}' |
    c++ -fsanitize=address -x c++ - -o "$SMOKE_DIR/asan_probe" 2>/dev/null &&
    "$SMOKE_DIR/asan_probe" 2>/dev/null; then
  ASAN_DIR="build-asan"
  cmake -B "$ASAN_DIR" -S . -DTC3I_SANITIZE=address -DTC3I_WERROR=ON \
      >/dev/null
  cmake --build "$ASAN_DIR" --target obs_flight_test -j >/dev/null
  "$ASAN_DIR"/tests/obs_flight_test >/dev/null ||
    { echo "FAIL: obs_flight_test failed under ASan"; exit 1; }
  echo "obs_flight_test clean under AddressSanitizer"
else
  echo "skipped: toolchain lacks -fsanitize=address support"
fi

echo "== perf smoke (sim_throughput vs committed baseline) =="
# Fails (exit 1) when any throughput metric drops below 70% of the
# committed bench/BENCH_sim_throughput.json (--min-ratio default 0.7,
# i.e. a >30% regression).
"$BUILD_DIR"/bench/sim_throughput \
    --report-out "$SMOKE_DIR/sim_throughput.json" \
    --baseline bench/BENCH_sim_throughput.json
"$BUILD_DIR"/tools/json_check "$SMOKE_DIR/sim_throughput.json"

# Capture must stay cheap: the critpath_overhead regime (saturated scenario
# re-run with a live CritPathStore) must keep at least half the plain
# saturated throughput, i.e. under a 2x slowdown.
extract_measured() {
  grep -o "\"label\":\"$1\",\"paper\":[0-9.eE+-]*,\"measured\":[0-9.eE+-]*" \
      "$SMOKE_DIR/sim_throughput.json" | sed 's/.*"measured"://'
}
SAT="$(extract_measured 'saturated.cycles_per_sec')"
CPO="$(extract_measured 'critpath_overhead.cycles_per_sec')"
[ -n "$SAT" ] && [ -n "$CPO" ] ||
  { echo "FAIL: sim_throughput report missing saturated/critpath rows"; \
    exit 1; }
awk -v sat="$SAT" -v cpo="$CPO" 'BEGIN { exit !(cpo >= 0.5 * sat) }' ||
  { echo "FAIL: critpath_overhead $CPO < 0.5 x saturated $SAT"; exit 1; }
echo "critpath overhead within budget ($CPO vs saturated $SAT cycles/s)"

# Sweep telemetry must stay cheap too: running a 100-point sweep with the
# full telemetry stack (sched store + aggregation + report/trace
# serialization) must keep at least 95% of the plain sweep throughput.
SP="$(extract_measured 'sweep_plain.points_per_sec')"
ST="$(extract_measured 'sweep_telemetry.points_per_sec')"
[ -n "$SP" ] && [ -n "$ST" ] ||
  { echo "FAIL: sim_throughput report missing sweep_plain/telemetry rows"; \
    exit 1; }
awk -v sp="$SP" -v st="$ST" 'BEGIN { exit !(st >= 0.95 * sp) }' ||
  { echo "FAIL: sweep_telemetry $ST < 0.95 x sweep_plain $SP points/s"; \
    exit 1; }
echo "sweep telemetry overhead within budget ($ST vs plain $SP points/s)"

# The always-on flight recorder must cost at most 2% of sweep throughput:
# sweep_plain runs with the recorder capturing, sweep_flight_off is the
# identical sweep with emit() degraded to a relaxed load + branch.
SFO="$(extract_measured 'sweep_flight_off.points_per_sec')"
[ -n "$SFO" ] ||
  { echo "FAIL: sim_throughput report missing sweep_flight_off row"; \
    exit 1; }
awk -v sp="$SP" -v sfo="$SFO" 'BEGIN { exit !(sp >= 0.98 * sfo) }' ||
  { echo "FAIL: flight recorder overhead above 2%:" \
         "sweep_plain $SP < 0.98 x sweep_flight_off $SFO points/s"; exit 1; }
echo "flight recorder overhead within budget ($SP vs recorder-off $SFO" \
     "points/s)"

# The batched lockstep engine must actually pay for itself: sweep_batched
# throughput at least 5x sweep_plain. The measured margin is ~40x (see
# docs/PERFORMANCE.md); the 5x floor leaves room for noisy CI hosts while
# still catching a lost arena-recycling path instantly.
SB="$(extract_measured 'sweep_batched.points_per_sec')"
[ -n "$SB" ] ||
  { echo "FAIL: sim_throughput report missing sweep_batched row"; exit 1; }
awk -v sp="$SP" -v sb="$SB" 'BEGIN { exit !(sb >= 5.0 * sp) }' ||
  { echo "FAIL: sweep_batched $SB < 5 x sweep_plain $SP points/s"; exit 1; }
echo "batched sweep throughput above floor ($SB vs plain $SP points/s)"

# Intra-run partitioning must pay for itself where real cores exist: on
# hosts with >= 4 hardware threads, single_run_partitioned.k8 must reach
# at least 3x the k1 (scalar) row. Byte-identity is gated unconditionally
# above; the speedup claim is meaningless on a 1-2 core host, where the
# partitions serialize and the row measures pure engine overhead.
PK1="$(extract_measured 'single_run_partitioned.k1.cycles_per_sec')"
PK8="$(extract_measured 'single_run_partitioned.k8.cycles_per_sec')"
[ -n "$PK1" ] && [ -n "$PK8" ] ||
  { echo "FAIL: sim_throughput report missing single_run_partitioned rows"; \
    exit 1; }
if [ "$(nproc)" -ge 4 ]; then
  awk -v k1="$PK1" -v k8="$PK8" 'BEGIN { exit !(k8 >= 3.0 * k1) }' ||
    { echo "FAIL: single_run_partitioned k8 $PK8 < 3 x k1 $PK1 cycles/s"; \
      exit 1; }
  echo "partitioned single-run speedup above floor (k8 $PK8 vs k1 $PK1" \
       "cycles/s)"
else
  echo "skipped partitioned speedup gate: host has $(nproc) hardware" \
       "threads (< 4)"
fi

echo "== perf trend gate (bench/BENCH_history.jsonl) =="
# Every check run contributes a datapoint: append this run's sim_throughput
# rows to the committed history, then gate the newest entry against the
# trailing window (median - k x MAD robust floor, plus a minimum-drop
# threshold; see tools/perf_trend.cpp). The gate must also demonstrably
# fire: the same run appended to a scratch copy at a 2x slowdown must fail.
"$BUILD_DIR"/tools/perf_trend append bench/BENCH_history.jsonl \
    "$SMOKE_DIR/sim_throughput.json"
"$BUILD_DIR"/tools/perf_trend check bench/BENCH_history.jsonl ||
  { echo "FAIL: perf trend gate flagged this run as a regression"; exit 1; }
cp bench/BENCH_history.jsonl "$SMOKE_DIR/hist_bad.jsonl"
"$BUILD_DIR"/tools/perf_trend append "$SMOKE_DIR/hist_bad.jsonl" \
    "$SMOKE_DIR/sim_throughput.json" --scale 0.5
if "$BUILD_DIR"/tools/perf_trend check "$SMOKE_DIR/hist_bad.jsonl" \
    >/dev/null 2>&1; then
  echo "FAIL: perf trend gate did not flag an injected 2x slowdown"; exit 1
fi
echo "perf trend gate passes on this run, fails on injected 2x slowdown"

echo "ALL CHECKS PASSED"
